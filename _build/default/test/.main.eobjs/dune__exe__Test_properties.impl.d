test/test_properties.ml: Array Block Butterfly Cell Consolidation Ext_array List Logstar_compaction Multiway Odex Odex_crypto Odex_extmem QCheck2 Quantiles Selection Shuffle_deal Sort Storage Util
