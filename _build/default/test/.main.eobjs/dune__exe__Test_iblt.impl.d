test/test_iblt.ml: Alcotest Array Block Cell Ext_iblt Iblt List Odex_crypto Odex_extmem Odex_iblt QCheck2 Stats Storage Trace Util
