test/test_extmem.ml: Alcotest Array Block Bytes Cache Cell Emodel Ext_array List Odex_crypto Odex_extmem QCheck2 Stats Storage Trace Util
