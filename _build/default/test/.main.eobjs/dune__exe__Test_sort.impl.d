test/test_sort.ml: Alcotest Array Cell Ext_array Failure_sweep List Multiway Odex Odex_crypto Odex_extmem Odex_sortnet Printf QCheck2 Quantiles Shuffle_deal Sort Storage Trace Util
