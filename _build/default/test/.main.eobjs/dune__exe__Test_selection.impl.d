test/test_selection.ml: Alcotest Array Cell Ext_array Float List Odex Odex_crypto Odex_extmem Printf QCheck2 Selection Storage Trace Util
