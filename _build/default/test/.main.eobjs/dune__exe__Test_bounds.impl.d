test/test_bounds.ml: Alcotest Bounds Float List Odex Odex_crypto
