test/util.ml: Alcotest Array Cell Ext_array List Odex_crypto Odex_extmem QCheck2 QCheck_alcotest Storage Trace
