test/main.mli:
