open Odex_extmem
open Odex_iblt

let prf_key = Odex_crypto.Prf.key_of_int

let test_insert_get () =
  let t = Iblt.create ~size:60 (prf_key 1) in
  for x = 0 to 9 do
    Iblt.insert t ~key:x ~value:(x * x)
  done;
  Alcotest.(check int) "entries" 10 (Iblt.entries t);
  for x = 0 to 9 do
    match Iblt.get t x with
    | Iblt.Found v -> Alcotest.(check int) "value" (x * x) v
    | Iblt.Absent -> Alcotest.failf "key %d reported absent" x
    | Iblt.Unknown -> () (* allowed failure mode *)
  done;
  (match Iblt.get t 999 with
  | Iblt.Absent | Iblt.Unknown -> ()
  | Iblt.Found _ -> Alcotest.fail "phantom key found")

let test_delete_roundtrip () =
  let t = Iblt.create ~size:50 (prf_key 2) in
  List.iter (fun x -> Iblt.insert t ~key:x ~value:(2 * x)) [ 1; 2; 3; 4; 5 ];
  List.iter (fun x -> Iblt.delete t ~key:x ~value:(2 * x)) [ 2; 4 ];
  let pairs, complete = Iblt.list_entries t in
  Alcotest.(check bool) "complete" true complete;
  Alcotest.(check (list (pair int int)))
    "survivors"
    [ (1, 2); (3, 6); (5, 10) ]
    (List.sort compare pairs)

let test_list_entries_complete () =
  let rng = Odex_crypto.Rng.create ~seed:3 in
  let n = 100 in
  let t = Iblt.create ~size:(6 * n) (Odex_crypto.Prf.fresh_key rng) in
  let expected = List.init n (fun x -> (x * 7, x)) in
  List.iter (fun (key, value) -> Iblt.insert t ~key ~value) expected;
  let pairs, complete = Iblt.list_entries t in
  Alcotest.(check bool) "complete at load 1/6" true complete;
  Alcotest.(check (list (pair int int))) "all pairs" expected (List.sort compare pairs);
  (* list_entries is non-destructive *)
  let pairs2, _ = Iblt.list_entries t in
  Alcotest.(check int) "second decode identical" (List.length pairs) (List.length pairs2)

let test_overload_incomplete () =
  (* n far above m: the decode must report incompleteness, not lie. *)
  let t = Iblt.create ~size:9 (prf_key 4) in
  for x = 0 to 99 do
    Iblt.insert t ~key:x ~value:x
  done;
  let pairs, complete = Iblt.list_entries t in
  Alcotest.(check bool) "incomplete" false complete;
  Alcotest.(check bool) "recovers fewer than all" true (List.length pairs < 100)

let test_insert_beyond_capacity_then_delete () =
  (* Paper §2: inserts/deletes work regardless of capacity; decoding
     succeeds once n is back under m. *)
  let t = Iblt.create ~size:30 (prf_key 5) in
  for x = 0 to 199 do
    Iblt.insert t ~key:x ~value:x
  done;
  for x = 0 to 195 do
    Iblt.delete t ~key:x ~value:x
  done;
  let pairs, complete = Iblt.list_entries t in
  Alcotest.(check bool) "complete after deletions" true complete;
  Alcotest.(check (list int)) "the four survivors" [ 196; 197; 198; 199 ]
    (List.sort compare (List.map fst pairs))

let test_success_rate_at_recommended_load () =
  (* Lemma 1: m = δkn with δ >= 2, k = 3 gives failure prob <= 1/n^c. *)
  let n = 50 in
  let trials = 200 in
  let failures = ref 0 in
  for trial = 1 to trials do
    let t = Iblt.create ~k:3 ~size:(2 * 3 * n) (prf_key (1000 + trial)) in
    for x = 0 to n - 1 do
      Iblt.insert t ~key:x ~value:x
    done;
    let _, complete = Iblt.list_entries t in
    if not complete then incr failures
  done;
  if !failures > trials / 20 then
    Alcotest.failf "decode failed %d/%d times at the Lemma 1 load" !failures trials

let test_get_absent_on_empty_cell () =
  let t = Iblt.create ~size:60 (prf_key 7) in
  Iblt.insert t ~key:5 ~value:50;
  (match Iblt.get t 123456 with
  | Iblt.Absent -> ()
  | Iblt.Found _ -> Alcotest.fail "found absent key"
  | Iblt.Unknown -> () (* possible but very unlikely with one entry *));
  Alcotest.(check int) "counts sum to k*entries" (Iblt.k t)
    (Array.fold_left ( + ) 0 (Iblt.cell_counts t))

(* ---------------- external-memory IBLT ---------------- *)

let mk_block b seed =
  Array.init b (fun i ->
      if (seed + i) mod 3 = 0 then Cell.empty
      else Cell.item ~tag:i ~key:(seed + i) ~value:(seed * i) ())

let test_ext_iblt_roundtrip () =
  let s = Util.storage ~b:4 () in
  let t = Ext_iblt.create s ~cells:40 (prf_key 8) in
  Alcotest.(check int) "blocks per cell" 2 (Ext_iblt.blocks_per_cell t);
  let payloads = List.init 6 (fun i -> (i * 3, mk_block 4 (i + 1))) in
  List.iter (fun (index, blk) -> Ext_iblt.insert t ~index blk) payloads;
  let got, complete = Ext_iblt.decode_in_cache t ~m:128 in
  Alcotest.(check bool) "complete" true complete;
  Alcotest.(check int) "count" 6 (List.length got);
  List.iter
    (fun (index, blk) ->
      let blk' = List.assoc index got in
      if not (Array.for_all2 Cell.equal blk blk') then
        Alcotest.failf "payload mismatch at index %d" index)
    payloads

let test_ext_iblt_oblivious_trace () =
  (* insert and touch on the same key: identical adversary views. *)
  let run use_insert =
    let s = Util.storage ~b:4 () in
    let t = Ext_iblt.create s ~cells:30 (prf_key 9) in
    for index = 0 to 9 do
      if use_insert then Ext_iblt.insert t ~index (mk_block 4 index)
      else Ext_iblt.touch t ~index
    done;
    (Trace.digest (Storage.trace s), Trace.length (Storage.trace s))
  in
  Alcotest.(check bool) "insert/touch traces equal" true (run true = run false)

let test_ext_iblt_empty_payloads () =
  let s = Util.storage ~b:3 () in
  let t = Ext_iblt.create s ~cells:30 (prf_key 10) in
  Ext_iblt.insert t ~index:4 (Block.make 3);
  let got, complete = Ext_iblt.decode_in_cache t ~m:128 in
  Alcotest.(check bool) "complete" true complete;
  (match got with
  | [ (4, blk) ] -> Alcotest.(check bool) "empty payload survives" true (Block.is_empty blk)
  | _ -> Alcotest.fail "expected exactly one entry")

let test_ext_iblt_io_cost () =
  (* Each insert costs exactly k * blocks_per_cell reads and writes. *)
  let s = Util.storage ~b:4 () in
  let t = Ext_iblt.create s ~cells:30 (prf_key 11) in
  let before = Stats.total (Storage.stats s) in
  Ext_iblt.insert t ~index:0 (mk_block 4 0);
  let cost = Stats.total (Storage.stats s) - before in
  Alcotest.(check int) "insert I/O cost" (2 * Ext_iblt.k t * Ext_iblt.blocks_per_cell t) cost

let prop_ram_iblt_decodes =
  Util.qcheck_case ~name:"RAM IBLT decodes distinct keys at low load" ~count:60
    QCheck2.Gen.(pair (list_size (int_range 0 40) (int_range 0 1_000_000)) int)
    (fun (keys, seed) ->
      let keys = List.sort_uniq compare keys in
      let n = max 1 (List.length keys) in
      let t = Iblt.create ~k:3 ~size:(8 * 3 * n) (prf_key seed) in
      List.iter (fun key -> Iblt.insert t ~key ~value:(key + 1)) keys;
      let pairs, complete = Iblt.list_entries t in
      (* At load 1/24, decode should essentially always succeed; accept
         incomplete only if it owns up to it. *)
      (not complete)
      || List.sort compare pairs = List.map (fun k -> (k, k + 1)) keys)

let suite =
  [
    ("insert/get", `Quick, test_insert_get);
    ("delete roundtrip", `Quick, test_delete_roundtrip);
    ("list_entries complete", `Quick, test_list_entries_complete);
    ("overload reports incomplete", `Quick, test_overload_incomplete);
    ("overfill then delete", `Quick, test_insert_beyond_capacity_then_delete);
    ("Lemma 1 load success rate", `Slow, test_success_rate_at_recommended_load);
    ("get absent", `Quick, test_get_absent_on_empty_cell);
    ("ext-IBLT roundtrip", `Quick, test_ext_iblt_roundtrip);
    ("ext-IBLT oblivious insert/touch", `Quick, test_ext_iblt_oblivious_trace);
    ("ext-IBLT empty payload", `Quick, test_ext_iblt_empty_payloads);
    ("ext-IBLT insert I/O cost", `Quick, test_ext_iblt_io_cost);
    prop_ram_iblt_decodes;
  ]
