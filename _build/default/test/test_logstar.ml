open Odex_extmem
open Odex

let consolidated ~b ~n occupied =
  let s = Util.storage ~b () in
  let a = Ext_array.create s ~blocks:n in
  List.iter
    (fun (pos, seed) ->
      let blk = Array.init b (fun j -> Cell.item ~tag:j ~key:((seed * 100) + j) ~value:seed ()) in
      Storage.unchecked_poke s (Ext_array.addr a pos) blk)
    occupied;
  (s, a)

let payload_seeds arr =
  List.sort_uniq compare
    (List.filter_map
       (fun i ->
         match
           Block.items (Storage.unchecked_peek (Ext_array.storage arr) (Ext_array.addr arr i))
         with
         | it :: _ -> Some it.Cell.value
         | [] -> None)
       (List.init (Ext_array.blocks arr) (fun i -> i)))

let test_logstar_basic () =
  let n = 256 in
  let occupied = List.init 40 (fun i -> (i * 6, i + 1)) in
  let _, a = consolidated ~b:2 ~n occupied in
  let rng = Odex_crypto.Rng.create ~seed:1 in
  let out = Logstar_compaction.run ~m:32 ~rng ~capacity:64 a in
  Alcotest.(check bool) "ok" true out.Logstar_compaction.ok;
  Alcotest.(check int) "dest size 4.25r" ((4 * 64) + 16)
    (Ext_array.blocks out.Logstar_compaction.dest);
  Alcotest.(check (list int)) "every block present" (List.init 40 (fun i -> i + 1))
    (payload_seeds out.Logstar_compaction.dest);
  Alcotest.(check int) "all items present" (40 * 2)
    (List.length (Ext_array.items out.Logstar_compaction.dest))

let test_logstar_empty_and_full_edges () =
  let _, a = consolidated ~b:2 ~n:16 [] in
  let rng = Odex_crypto.Rng.create ~seed:2 in
  let out = Logstar_compaction.run ~m:8 ~rng ~capacity:4 a in
  Alcotest.(check bool) "empty ok" true out.Logstar_compaction.ok;
  Alcotest.(check int) "no items" 0 (List.length (Ext_array.items out.Logstar_compaction.dest));
  let out0 = Logstar_compaction.run ~m:8 ~rng ~capacity:0 (snd (consolidated ~b:2 ~n:4 [])) in
  Alcotest.(check int) "capacity 0" 0 (Ext_array.blocks out0.Logstar_compaction.dest)

let test_logstar_quarter_load () =
  (* r = n/4 exactly, the theorem's limit. *)
  let n = 128 in
  let occupied = List.init 32 (fun i -> (i * 4, i + 1)) in
  let _, a = consolidated ~b:2 ~n occupied in
  let rng = Odex_crypto.Rng.create ~seed:3 in
  let out = Logstar_compaction.run ~m:16 ~rng ~capacity:32 a in
  Alcotest.(check bool) "ok" true out.Logstar_compaction.ok;
  Alcotest.(check (list int)) "all present" (List.init 32 (fun i -> i + 1))
    (payload_seeds out.Logstar_compaction.dest)

let test_logstar_oblivious () =
  let trace occupied =
    let _, a = consolidated ~b:2 ~n:128 occupied in
    let s = Ext_array.storage a in
    let rng = Odex_crypto.Rng.create ~seed:4 in
    ignore (Logstar_compaction.run ~m:16 ~rng ~capacity:24 a);
    (Trace.digest (Storage.trace s), Trace.length (Storage.trace s))
  in
  let t1 = trace (List.init 20 (fun i -> (i, i + 1))) in
  let t2 = trace (List.init 20 (fun i -> (127 - (i * 5), i + 1))) in
  let t3 = trace [] in
  Alcotest.(check bool) "trace fixed" true (t1 = t2 && t2 = t3)

let test_logstar_phase_count () =
  (* Phases are bounded by log* and by the tower cutoff. *)
  let _, a = consolidated ~b:2 ~n:512 (List.init 100 (fun i -> (i * 5, i + 1))) in
  let rng = Odex_crypto.Rng.create ~seed:5 in
  let out = Logstar_compaction.run ~m:32 ~rng ~capacity:128 a in
  Alcotest.(check bool) "phases bounded" true
    (out.Logstar_compaction.phases <= Emodel.log_star 512)

(* ---------------- the audit module itself ---------------- *)

let test_audit_flags_oblivious_algorithm () =
  let rng = Odex_crypto.Rng.create ~seed:6 in
  let inputs = Oblivious.input_classes ~rng ~n:60 in
  let subject =
    {
      Oblivious.name = "consolidation";
      run = (fun _rng _s a -> ignore (Consolidation.run ~into:None a));
    }
  in
  let report = Oblivious.audit ~b:4 ~inputs subject in
  Alcotest.(check bool) "consolidation passes audit" true report.Oblivious.oblivious;
  Alcotest.(check int) "five observations" 5 (List.length report.Oblivious.observations)

let test_audit_flags_leaky_algorithm () =
  (* A deliberately leaky "sort": reads depend on the data (hash-table
     style access, the paper's non-example). *)
  let rng = Odex_crypto.Rng.create ~seed:7 in
  let inputs = Oblivious.input_classes ~rng ~n:60 in
  let leaky =
    {
      Oblivious.name = "leaky";
      run =
        (fun _rng s a ->
          let n = Ext_array.blocks a in
          for i = 0 to n - 1 do
            let blk = Ext_array.read_block a i in
            match Block.items blk with
            | it :: _ -> ignore (Storage.read s (Ext_array.addr a (it.key mod n)))
            | [] -> ()
          done);
    }
  in
  let report = Oblivious.audit ~b:4 ~inputs leaky in
  Alcotest.(check bool) "leak detected" false report.Oblivious.oblivious

let test_audit_all_core_algorithms () =
  let rng = Odex_crypto.Rng.create ~seed:8 in
  let inputs = Oblivious.input_classes ~rng ~n:240 in
  let subjects =
    [
      {
        Oblivious.name = "sort";
        run = (fun rng _s a -> ignore (Sort.run ~m:12 ~rng a));
      };
      {
        Oblivious.name = "selection";
        run = (fun rng _s a -> ignore (Selection.select ~m:12 ~rng ~k:50 a));
      };
      {
        Oblivious.name = "quantiles";
        run = (fun rng _s a -> ignore (Quantiles.run ~m:12 ~rng ~q:3 a));
      };
      {
        Oblivious.name = "loose-compaction";
        run =
          (fun rng _s a ->
            let d = Consolidation.run ~into:None a in
            ignore (Loose_compaction.run ~m:24 ~rng ~capacity:(Ext_array.blocks d / 4) d));
      };
      {
        Oblivious.name = "logstar-compaction";
        run =
          (fun rng _s a ->
            let d = Consolidation.run ~into:None a in
            ignore (Logstar_compaction.run ~m:16 ~rng ~capacity:(Ext_array.blocks d / 4) d));
      };
    ]
  in
  List.iter
    (fun subject ->
      let report = Oblivious.audit ~b:4 ~inputs subject in
      if not report.Oblivious.oblivious then
        Alcotest.failf "%s failed the obliviousness audit" report.Oblivious.subject)
    subjects

let suite =
  [
    ("logstar basic", `Quick, test_logstar_basic);
    ("logstar edges", `Quick, test_logstar_empty_and_full_edges);
    ("logstar quarter load", `Quick, test_logstar_quarter_load);
    ("logstar oblivious", `Quick, test_logstar_oblivious);
    ("logstar phase bound", `Quick, test_logstar_phase_count);
    ("audit passes oblivious subject", `Quick, test_audit_flags_oblivious_algorithm);
    ("audit catches leaky subject", `Quick, test_audit_flags_leaky_algorithm);
    ("audit all core algorithms", `Slow, test_audit_all_core_algorithms);
  ]
