open Odex

let test_lemma22_monotone () =
  (* The bound decreases in gamma and in mu. *)
  let b g mu = Bounds.binomial_tail_lemma22 ~gamma:g ~mu in
  Alcotest.(check bool) "decreasing in gamma" true (b 8. 2. < b 6. 2.);
  Alcotest.(check bool) "decreasing in mu" true (b 8. 4. < b 8. 2.);
  Alcotest.(check (float 0.0001)) "gamma below 2e is vacuous" 1. (b 5. 10.);
  Alcotest.(check bool) "valid probability" true (b 100. 10. >= 0. && b 100. 10. <= 1.)

let test_lemma22_dominates_monte_carlo () =
  let rng = Odex_crypto.Rng.create ~seed:1 in
  let n = 400 and p = 0.02 and gamma = 7. in
  let mu = Float.of_int n *. p in
  let trials = 5000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    let x = ref 0 in
    for _ = 1 to n do
      if Odex_crypto.Rng.bernoulli rng p then incr x
    done;
    if Float.of_int !x > gamma *. mu then incr hits
  done;
  let emp = Float.of_int !hits /. Float.of_int trials in
  let bound = Bounds.binomial_tail_lemma22 ~gamma ~mu in
  if bound < emp then Alcotest.failf "bound %.5f below empirical %.5f" bound emp

let test_lemma23_cases () =
  (* Exercise every branch of the case analysis. *)
  let b t = Bounds.negative_binomial_tail_lemma23 ~n:100 ~p:0.25 ~t in
  let alpha = 4. in
  List.iter
    (fun t ->
      let v = b t in
      if v < 0. || v > 1. then Alcotest.failf "invalid probability at t=%.2f" t)
    [ alpha /. 4.; alpha /. 2.; alpha; 2. *. alpha; 3. *. alpha; 10. *. alpha ];
  Alcotest.(check bool) "decreasing in t" true (b (4. *. alpha) < b (alpha /. 4.));
  Alcotest.check_raises "invalid p"
    (Invalid_argument "Bounds.negative_binomial_tail_lemma23") (fun () ->
      ignore (Bounds.negative_binomial_tail_lemma23 ~n:10 ~p:1.5 ~t:1.))

let test_lemma23_dominates_monte_carlo () =
  let rng = Odex_crypto.Rng.create ~seed:2 in
  let n = 80 and p = 0.3 in
  let alpha = 1. /. p in
  let t = 2.5 *. alpha in
  let trials = 5000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    let x = ref 0 in
    for _ = 1 to n do
      x := !x + Odex_crypto.Rng.geometric rng p
    done;
    if Float.of_int !x > (alpha +. t) *. Float.of_int n then incr hits
  done;
  let emp = Float.of_int !hits /. Float.of_int trials in
  let bound = Bounds.negative_binomial_tail_lemma23 ~n ~p ~t in
  if bound < emp then Alcotest.failf "bound %.5f below empirical %.5f" bound emp

let test_loose_compaction_failure_small () =
  (* The derived failure bound should be tiny for sane parameters and
     shrink with more thinning rounds. *)
  let f c0 = Bounds.loose_compaction_failure ~n_blocks:4096 ~c0 ~c1:3 in
  Alcotest.(check bool) "small at c0=4" true (f 4 < 0.01);
  Alcotest.(check bool) "decreasing in c0" true (f 6 < f 4);
  Alcotest.(check (float 0.)) "trivial array" 0.
    (Bounds.loose_compaction_failure ~n_blocks:1 ~c0:4 ~c1:3)

let test_selection_failure_shrinks () =
  (* Lemma 11's additive bound only bites once n^{1/8} >> 9 — i.e. for
     the astronomically large N the paper's constants target. *)
  let huge = Bounds.selection_failure ~n:(Float.to_int 1e16) in
  Alcotest.(check bool) "meaningful at n = 1e16" true (huge < 1e-3);
  Alcotest.(check bool) "decreasing in n" true
    (huge < Bounds.selection_failure ~n:(Float.to_int 1e12));
  Alcotest.(check (float 0.)) "vacuous for feasible n" 1.
    (Bounds.selection_failure ~n:1_000_000)

let test_shuffle_deal_overflow_small () =
  let p = Bounds.shuffle_deal_overflow ~m_blocks:256 ~d:2 in
  Alcotest.(check bool) "tiny overflow probability" true (p < 1e-6)

let suite =
  [
    ("Lemma 22 shape", `Quick, test_lemma22_monotone);
    ("Lemma 22 vs Monte-Carlo", `Quick, test_lemma22_dominates_monte_carlo);
    ("Lemma 23 cases", `Quick, test_lemma23_cases);
    ("Lemma 23 vs Monte-Carlo", `Quick, test_lemma23_dominates_monte_carlo);
    ("Lemma 7 instantiation", `Quick, test_loose_compaction_failure_small);
    ("Lemma 11 instantiation", `Quick, test_selection_failure_shrinks);
    ("Lemma 18 instantiation", `Quick, test_shuffle_deal_overflow_small);
  ]
