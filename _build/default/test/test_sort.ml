open Odex_extmem
open Odex

(* ---------------- quantiles ---------------- *)

let reference_quantiles keys q =
  let sorted = List.sort compare (Array.to_list keys) in
  let arr = Array.of_list sorted in
  let total = Array.length arr in
  Array.init q (fun i -> arr.(Quantiles.rank_of_quantile ~total ~q (i + 1) - 1))

let run_quantiles ~b ~m ~seed ~q keys =
  let cells = Util.cells_of_keys keys in
  let s = Util.storage ~b () in
  let a = Ext_array.of_cells s ~block_size:b cells in
  let rng = Odex_crypto.Rng.create ~seed in
  Quantiles.run ~m ~rng ~q a

let test_quantiles_in_cache () =
  let keys = Array.init 40 (fun i -> 39 - i) in
  let r = run_quantiles ~b:4 ~m:32 ~seed:0 ~q:3 keys in
  Alcotest.(check bool) "ok" true r.Quantiles.ok;
  Alcotest.(check (list int)) "quartiles" [ 9; 19; 29 ]
    (Array.to_list (Array.map (fun (it : Cell.item) -> it.key) r.Quantiles.quantiles))

let test_quantiles_by_sorting () =
  (* n_blocks > m but m^4 >= n: the easy case. *)
  let rng = Odex_crypto.Rng.create ~seed:1 in
  let keys = Util.random_keys rng 400 ~bound:100_000 in
  let r = run_quantiles ~b:4 ~m:8 ~seed:2 ~q:4 keys in
  Alcotest.(check bool) "ok" true r.Quantiles.ok;
  Alcotest.(check (list int)) "matches reference"
    (Array.to_list (reference_quantiles keys 4))
    (Array.to_list (Array.map (fun (it : Cell.item) -> it.key) r.Quantiles.quantiles))

let test_quantiles_sampled_path () =
  (* Force the sampling path: m^4 < n_blocks requires tiny m; use m = 3,
     n_blocks = 100 > 81. *)
  let rng = Odex_crypto.Rng.create ~seed:3 in
  let keys = Util.random_keys rng 300 ~bound:1_000 in
  let r = run_quantiles ~b:3 ~m:3 ~seed:4 ~q:2 keys in
  (* The sampled path at this scale may reject; when it accepts it must
     match the reference. *)
  if r.Quantiles.ok then
    Alcotest.(check (list int)) "matches reference"
      (Array.to_list (reference_quantiles keys 2))
      (Array.to_list (Array.map (fun (it : Cell.item) -> it.key) r.Quantiles.quantiles))

let test_quantiles_duplicates () =
  let keys = Array.make 200 5 in
  let r = run_quantiles ~b:4 ~m:8 ~seed:5 ~q:3 keys in
  Alcotest.(check bool) "ok" true r.Quantiles.ok;
  Array.iter
    (fun (it : Cell.item) -> Alcotest.(check int) "all fives" 5 it.key)
    r.Quantiles.quantiles

let test_quantiles_validation () =
  let keys = Array.init 10 (fun i -> i) in
  Alcotest.(check bool) "q=0 rejected" true
    (try
       ignore (run_quantiles ~b:2 ~m:4 ~seed:6 ~q:0 keys);
       false
     with Invalid_argument _ -> true)

(* ---------------- multiway consolidation ---------------- *)

let color_mod3 (it : Cell.item) = it.key mod 3

let test_multiway () =
  let rng = Odex_crypto.Rng.create ~seed:7 in
  let keys = Util.random_keys rng 100 ~bound:1000 in
  let cells = Util.cells_of_keys keys in
  let s = Util.storage ~b:4 () in
  let a = Ext_array.of_cells s ~block_size:4 cells in
  let d = Multiway.consolidate ~colors:3 ~color_of:color_mod3 a in
  Alcotest.(check int) "output size" (Ext_array.blocks a + Multiway.tail_blocks 3)
    (Ext_array.blocks d);
  Alcotest.(check bool) "monochromatic" true (Multiway.monochromatic ~color_of:color_mod3 d);
  Util.check_multiset "multiway" keys d;
  (* Per-color relative order is preserved. *)
  let per_color c arr =
    List.filter_map
      (fun (it : Cell.item) -> if color_mod3 it = c then Some it.tag else None)
      arr
  in
  let input_items = Array.to_list (Array.map Cell.get cells) in
  for c = 0 to 2 do
    Alcotest.(check (list int))
      (Printf.sprintf "color %d order" c)
      (per_color c input_items)
      (per_color c (Ext_array.items d))
  done

let test_multiway_skewed () =
  (* All one color: the hoarding worst case for the tail flush. *)
  let keys = Array.make 97 3 in
  let cells = Util.cells_of_keys keys in
  let s = Util.storage ~b:4 () in
  let a = Ext_array.of_cells s ~block_size:4 cells in
  let d = Multiway.consolidate ~colors:5 ~color_of:(fun _ -> 4) a in
  Util.check_multiset "skewed multiway" keys d;
  Alcotest.(check bool) "monochromatic" true (Multiway.monochromatic ~color_of:(fun _ -> 4) d)

let test_multiway_oblivious () =
  let trace keys =
    let cells = Util.cells_of_keys keys in
    let s = Util.storage ~b:4 () in
    let a = Ext_array.of_cells s ~block_size:4 cells in
    ignore (Multiway.consolidate ~colors:3 ~color_of:color_mod3 a);
    (Trace.digest (Storage.trace s), Trace.length (Storage.trace s))
  in
  let t1 = trace (Array.init 60 (fun i -> i)) in
  let t2 = trace (Array.make 60 0) in
  Alcotest.(check bool) "trace fixed" true (t1 = t2)

(* ---------------- shuffle and deal ---------------- *)

let test_shuffle_preserves () =
  let keys = Array.init 64 (fun i -> i) in
  let cells = Util.cells_of_keys keys in
  let s = Util.storage ~b:4 () in
  let a = Ext_array.of_cells s ~block_size:4 cells in
  let rng = Odex_crypto.Rng.create ~seed:8 in
  Shuffle_deal.shuffle ~rng a;
  Util.check_multiset "shuffle" keys a;
  (* With 16 blocks, the identity permutation has probability 1/16!. *)
  Alcotest.(check bool) "actually shuffled" true
    (Util.keys_of_items (Ext_array.items a) <> Array.to_list keys)

let test_deal () =
  let keys = Array.init 120 (fun i -> i) in
  let cells = Util.cells_of_keys keys in
  let s = Util.storage ~b:4 () in
  let a = Ext_array.of_cells s ~block_size:4 cells in
  let color_of (it : Cell.item) = if it.key < 60 then 0 else 1 in
  let mono = Multiway.consolidate ~colors:2 ~color_of a in
  let rng = Odex_crypto.Rng.create ~seed:9 in
  Shuffle_deal.shuffle ~rng mono;
  let { Shuffle_deal.outputs; ok } =
    Shuffle_deal.deal ~colors:2 ~color_of ~window:8 ~quota:9 ~carry_budget:16 mono
  in
  Alcotest.(check bool) "deal ok" true ok;
  Alcotest.(check int) "two outputs" 2 (Array.length outputs);
  let keys_of arr = List.sort compare (Util.keys_of_items (Ext_array.items arr)) in
  Alcotest.(check (list int)) "color 0 complete" (List.init 60 (fun i -> i)) (keys_of outputs.(0));
  Alcotest.(check (list int)) "color 1 complete" (List.init 60 (fun i -> i + 60))
    (keys_of outputs.(1))

let test_deal_carry_overflow_flagged () =
  (* quota 1 with a tiny carry budget must overflow and say so. *)
  let keys = Array.init 80 (fun i -> i) in
  let cells = Util.cells_of_keys keys in
  let s = Util.storage ~b:4 () in
  let a = Ext_array.of_cells s ~block_size:4 cells in
  let mono = Multiway.consolidate ~colors:2 ~color_of:(fun _ -> 0) a in
  let { Shuffle_deal.ok; _ } =
    Shuffle_deal.deal ~colors:2 ~color_of:(fun _ -> 0) ~window:8 ~quota:1 ~carry_budget:0 mono
  in
  Alcotest.(check bool) "overflow reported" false ok

(* ---------------- the full sort ---------------- *)

let run_sort ~b ~m ~seed keys =
  let cells = Util.cells_of_keys keys in
  let s = Util.storage ~b () in
  let a = Ext_array.of_cells s ~block_size:b cells in
  let rng = Odex_crypto.Rng.create ~seed in
  let outcome = Sort.run ~m ~rng a in
  (outcome, a, s)

let check_sort ~b ~m ~seed keys =
  let outcome, a, _ = run_sort ~b ~m ~seed keys in
  Alcotest.(check bool) "ok" true outcome.Sort.ok;
  Util.check_sorted_by_key "sort" a;
  Util.check_multiset "sort" keys a

let test_sort_small () = check_sort ~b:4 ~m:8 ~seed:10 (Util.random_keys (Odex_crypto.Rng.create ~seed:0) 50 ~bound:100)

let test_sort_medium () =
  check_sort ~b:4 ~m:16 ~seed:11 (Util.random_keys (Odex_crypto.Rng.create ~seed:1) 2_000 ~bound:10_000)

let test_sort_shapes () =
  let n = 1_200 in
  check_sort ~b:4 ~m:16 ~seed:12 (Array.init n (fun i -> i));
  check_sort ~b:4 ~m:16 ~seed:13 (Array.init n (fun i -> n - i));
  check_sort ~b:4 ~m:16 ~seed:14 (Array.make n 42);
  check_sort ~b:4 ~m:16 ~seed:15 (Array.init n (fun i -> i mod 7))

let test_sort_values_ride () =
  let keys = Util.random_keys (Odex_crypto.Rng.create ~seed:2) 500 ~bound:50 in
  let _, a, _ = run_sort ~b:4 ~m:16 ~seed:16 keys in
  List.iter
    (fun (it : Cell.item) -> Alcotest.(check int) "payload" (it.key * 10) it.value)
    (Ext_array.items a)

let test_sort_oblivious () =
  let trace keys =
    let cells = Util.cells_of_keys keys in
    let s = Util.storage ~b:4 () in
    let a = Ext_array.of_cells s ~block_size:4 cells in
    let rng = Odex_crypto.Rng.create ~seed:17 in
    ignore (Sort.run ~m:16 ~rng a);
    (Trace.digest (Storage.trace s), Trace.length (Storage.trace s))
  in
  let n = 800 in
  let t1 = trace (Array.init n (fun i -> i)) in
  let t2 = trace (Array.init n (fun i -> n - i)) in
  let t3 = trace (Array.make n 9) in
  let t4 = trace (Util.random_keys (Odex_crypto.Rng.create ~seed:3) n ~bound:1000) in
  Alcotest.(check bool) "sort trace is data-independent" true (t1 = t2 && t2 = t3 && t3 = t4)

let test_sort_padded () =
  let keys = Util.random_keys (Odex_crypto.Rng.create ~seed:4) 700 ~bound:300 in
  let cells = Util.cells_of_keys keys in
  let s = Util.storage ~b:4 () in
  let a = Ext_array.of_cells s ~block_size:4 cells in
  let rng = Odex_crypto.Rng.create ~seed:18 in
  let padded, ok = Sort.sort_padded ~m:16 ~rng a in
  Alcotest.(check bool) "ok" true ok;
  Util.check_sorted_by_key "padded" padded;
  Util.check_multiset "padded" keys padded

let test_sort_with_empties () =
  let cells =
    Array.init 900 (fun i ->
        if i mod 4 = 0 then Cell.empty else Cell.item ~tag:i ~key:(i * 13 mod 257) ~value:i ())
  in
  let keys =
    List.filter_map
      (fun c -> match c with Cell.Empty -> None | Cell.Item it -> Some it.key)
      (Array.to_list cells)
  in
  let s = Util.storage ~b:4 () in
  let a = Ext_array.of_cells s ~block_size:4 cells in
  let rng = Odex_crypto.Rng.create ~seed:19 in
  let outcome = Sort.run ~m:16 ~rng a in
  Alcotest.(check bool) "ok" true outcome.Sort.ok;
  Util.check_sorted_by_key "with empties" a;
  Alcotest.(check bool) "multiset" true
    (Util.sorted_multiset_equal (Util.keys_of_items (Ext_array.items a)) keys);
  (* Dense: items at the front. *)
  let out = Ext_array.to_cells a in
  let item_count = List.length keys in
  Array.iteri
    (fun i c ->
      if i < item_count && Cell.is_empty c then Alcotest.fail "hole in dense output";
      if i >= item_count && Cell.is_item c then Alcotest.fail "item past the dense prefix")
    out

(* ---------------- failure sweeping ---------------- *)

let test_failure_sweep_direct () =
  (* Three equal bucket arrays, the middle one scrambled and flagged. *)
  let s = Util.storage ~b:4 () in
  let mk lo =
    let keys = Array.init 32 (fun i -> lo + i) in
    Ext_array.of_cells s ~block_size:4 (Util.cells_of_keys keys)
  in
  let arrays = [| mk 0; mk 32; mk 64 |] in
  (* Sort buckets 0 and 2; scramble bucket 1 (reverse order = unsorted). *)
  Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.cache_sort ~m:64 arrays.(0);
  Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.cache_sort ~m:64 arrays.(2);
  let scrambled = Util.cells_of_keys (Array.init 32 (fun i -> 63 - i)) in
  Array.iteri
    (fun i c -> ignore i; ignore c)
    scrambled;
  let blocks = Ext_array.blocks arrays.(1) in
  for i = 0 to blocks - 1 do
    let blk = Array.init 4 (fun j -> scrambled.((i * 4) + j)) in
    Storage.unchecked_poke s (Ext_array.addr arrays.(1) i) blk
  done;
  let ok = Failure_sweep.sweep ~m:16 arrays [| true; false; true |] in
  Alcotest.(check bool) "sweep ok" true ok;
  (* Bucket 1 now sorted, buckets 0 and 2 untouched. *)
  let keys_of arr = Util.keys_of_items (Ext_array.items arr) in
  Alcotest.(check (list int)) "bucket 1 repaired" (List.init 32 (fun i -> 32 + i))
    (keys_of arrays.(1));
  Alcotest.(check (list int)) "bucket 0 intact" (List.init 32 (fun i -> i)) (keys_of arrays.(0));
  Alcotest.(check (list int)) "bucket 2 intact" (List.init 32 (fun i -> 64 + i))
    (keys_of arrays.(2))

let test_failure_sweep_no_failures_harmless () =
  let s = Util.storage ~b:2 () in
  let mk lo =
    let a = Ext_array.of_cells s ~block_size:2 (Util.cells_of_keys (Array.init 10 (fun i -> lo + i))) in
    Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.cache_sort ~m:64 a;
    a
  in
  let arrays = [| mk 0; mk 10 |] in
  let ok = Failure_sweep.sweep ~m:8 arrays [| true; true |] in
  Alcotest.(check bool) "ok" true ok;
  Alcotest.(check (list int)) "untouched" (List.init 10 (fun i -> i))
    (Util.keys_of_items (Ext_array.items arrays.(0)))

let test_failure_sweep_trace_independent_of_flags () =
  let run flags =
    let s = Util.storage ~b:2 () in
    let mk lo =
      let a =
        Ext_array.of_cells s ~block_size:2 (Util.cells_of_keys (Array.init 16 (fun i -> lo + i)))
      in
      a
    in
    let arrays = [| mk 0; mk 16; mk 32; mk 48 |] in
    ignore (Failure_sweep.sweep ~m:8 arrays flags);
    (Trace.digest (Storage.trace s), Trace.length (Storage.trace s))
  in
  let t1 = run [| true; true; true; true |] in
  let t2 = run [| true; false; true; true |] in
  let t3 = run [| false; true; true; false |] in
  Alcotest.(check bool) "sweep trace independent of which failed" true (t1 = t2 && t2 = t3)

let test_sort_heals_injected_failures () =
  let keys = Util.random_keys (Odex_crypto.Rng.create ~seed:5) 1_500 ~bound:5_000 in
  let cells = Util.cells_of_keys keys in
  let s = Util.storage ~b:4 () in
  let a = Ext_array.of_cells s ~block_size:4 cells in
  let rng = Odex_crypto.Rng.create ~seed:20 in
  (* Fail the second top-level bucket's sub-sort. *)
  let padded, ok =
    Sort.sort_padded_with_injection ~m:16 ~rng ~inject_failure:(fun path -> path = 2) a
  in
  Alcotest.(check bool) "healed" true ok;
  Util.check_sorted_by_key "healed sort" padded;
  Util.check_multiset "healed sort" keys padded

let prop_sort_random =
  Util.qcheck_case ~name:"Sort.run sorts arbitrary arrays" ~count:15
    QCheck2.Gen.(pair (list_size (int_range 0 600) (int_range (-100) 100)) int)
    (fun (keys, seed) ->
      let keys = Array.of_list keys in
      let outcome, a, _ = run_sort ~b:3 ~m:12 ~seed keys in
      (not outcome.Sort.ok)
      || Util.keys_of_items (Odex_extmem.Ext_array.items a)
         = List.sort compare (Array.to_list keys))

let suite =
  [
    ("quantiles in cache", `Quick, test_quantiles_in_cache);
    ("quantiles by sorting", `Quick, test_quantiles_by_sorting);
    ("quantiles sampled path", `Quick, test_quantiles_sampled_path);
    ("quantiles duplicates", `Quick, test_quantiles_duplicates);
    ("quantiles validation", `Quick, test_quantiles_validation);
    ("multiway consolidation", `Quick, test_multiway);
    ("multiway skewed colors", `Quick, test_multiway_skewed);
    ("multiway oblivious", `Quick, test_multiway_oblivious);
    ("shuffle preserves blocks", `Quick, test_shuffle_preserves);
    ("deal distributes", `Quick, test_deal);
    ("deal overflow flagged", `Quick, test_deal_carry_overflow_flagged);
    ("sort small", `Quick, test_sort_small);
    ("sort medium", `Quick, test_sort_medium);
    ("sort adversarial shapes", `Quick, test_sort_shapes);
    ("sort payload integrity", `Quick, test_sort_values_ride);
    ("sort oblivious", `Quick, test_sort_oblivious);
    ("sort padded API", `Quick, test_sort_padded);
    ("sort with empties", `Quick, test_sort_with_empties);
    ("failure sweep repairs", `Quick, test_failure_sweep_direct);
    ("failure sweep no-op", `Quick, test_failure_sweep_no_failures_harmless);
    ("failure sweep trace", `Quick, test_failure_sweep_trace_independent_of_flags);
    ("sort heals injected failures", `Quick, test_sort_heals_injected_failures);
    prop_sort_random;
  ]
