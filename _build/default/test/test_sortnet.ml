open Odex_extmem
open Odex_sortnet

let test_network_validation () =
  Alcotest.(check bool) "descending comparator rejected" true
    (try
       ignore (Network.create ~width:4 [ [ (2, 1) ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "overlap rejected" true
    (try
       ignore (Network.create ~width:4 [ [ (0, 1); (1, 2) ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "out of range rejected" true
    (try
       ignore (Network.create ~width:4 [ [ (0, 4) ] ]);
       false
     with Invalid_argument _ -> true)

let test_network_apply () =
  let net = Network.create ~width:2 [ [ (0, 1) ] ] in
  let a = [| 9; 3 |] in
  Network.apply net compare a;
  Alcotest.(check (list int)) "swapped" [ 3; 9 ] (Array.to_list a)

let test_odd_even_sorts_zero_one () =
  for n = 0 to 13 do
    let net = Batcher.odd_even_merge_sort n in
    Alcotest.(check int) "width" n (Network.width net);
    if not (Network.sorts_all_zero_one net) then
      Alcotest.failf "odd-even merge sort fails 0-1 check at n=%d" n
  done

let test_bitonic_sorts_zero_one () =
  List.iter
    (fun n ->
      let net = Batcher.bitonic n in
      if not (Network.sorts_all_zero_one net) then
        Alcotest.failf "bitonic fails 0-1 check at n=%d" n)
    [ 1; 2; 4; 8; 16 ]

let test_oems_known_size () =
  (* Batcher's odd-even merge sort on 8 inputs has exactly 19 comparators
     and depth 6 (Knuth, Fig. 5.3.4-49). *)
  let net = Batcher.odd_even_merge_sort 8 in
  Alcotest.(check int) "size" 19 (Network.size net);
  Alcotest.(check int) "depth" 6 (Network.depth net)

let test_network_sorts_random_ints () =
  let rng = Odex_crypto.Rng.create ~seed:1 in
  List.iter
    (fun n ->
      let net = Batcher.odd_even_merge_sort n in
      for _ = 1 to 20 do
        let a = Array.init n (fun _ -> Odex_crypto.Rng.int rng 50) in
        let expected = Array.copy a in
        Array.sort compare expected;
        Network.apply net compare a;
        Alcotest.(check (list int)) "sorted" (Array.to_list expected) (Array.to_list a)
      done)
    [ 5; 9; 17; 33 ]

let test_merge_split () =
  let mk keys = Array.map (fun k -> if k < 0 then Cell.empty else Cell.item ~key:k ~value:k ()) keys in
  let u = mk [| 1; 5; 9 |] and v = mk [| 2; 3; -1 |] in
  Ext_sort.merge_split ~cmp:Cell.compare_keys ~ascending:true u v;
  Alcotest.(check (list int)) "low half" [ 1; 2; 3 ]
    (List.map (fun (it : Cell.item) -> it.key) (Block.items u));
  Alcotest.(check (list int)) "high half" [ 5; 9 ]
    (List.map (fun (it : Cell.item) -> it.key) (Block.items v));
  let u = mk [| 1; 5; 9 |] and v = mk [| 2; 3; -1 |] in
  Ext_sort.merge_split ~cmp:Cell.compare_keys ~ascending:false u v;
  Alcotest.(check (list int)) "descending: high half first" [ 5; 9 ]
    (List.map (fun (it : Cell.item) -> it.key) (Block.items u))

let run_sort_case sorter ~b ~m keys =
  let cells = Util.cells_of_keys keys in
  let (), a =
    Util.with_array ~b cells (fun _s a ->
        Ext_sort.run sorter ~m a)
  in
  Util.check_sorted_by_key (Ext_sort.name sorter) a;
  Util.check_multiset (Ext_sort.name sorter) keys a

let test_sorters_correct () =
  let rng = Odex_crypto.Rng.create ~seed:5 in
  List.iter
    (fun sorter ->
      (* duplicates, negatives, various shapes *)
      run_sort_case sorter ~b:4 ~m:4 [| 5; 5; 5; 5 |];
      run_sort_case sorter ~b:4 ~m:4 [| 9; 8; 7; 6; 5; 4; 3; 2; 1 |];
      run_sort_case sorter ~b:3 ~m:4 (Util.random_keys rng 50 ~bound:20);
      run_sort_case sorter ~b:1 ~m:4 (Util.random_keys rng 17 ~bound:1000);
      run_sort_case sorter ~b:8 ~m:4 [||])
    [ Ext_sort.bitonic; Ext_sort.bitonic_windowed; Ext_sort.auto ]

let test_cache_sort_correct () =
  let rng = Odex_crypto.Rng.create ~seed:6 in
  run_sort_case Ext_sort.cache_sort ~b:4 ~m:32 (Util.random_keys rng 100 ~bound:30);
  run_sort_case Ext_sort.cache_sort ~b:4 ~m:1 [| 3; 1; 2 |]

let test_cache_sort_overflow () =
  let cells = Util.cells_of_keys [| 4; 3; 2; 1 |] in
  Alcotest.(check bool) "overflow raised" true
    (try
       ignore
         (Util.with_array ~b:1 cells (fun _s a -> Ext_sort.run Ext_sort.cache_sort ~m:2 a));
       false
     with Cache.Overflow _ -> true)

let test_sort_preserves_payload () =
  let keys = [| 4; 2; 7; 2; 0; 9; 4 |] in
  let cells = Util.cells_of_keys keys in
  let (), a = Util.with_array ~b:2 cells (fun _s a -> Ext_sort.run Ext_sort.bitonic ~m:2 a) in
  List.iter
    (fun (it : Cell.item) ->
      Alcotest.(check int) "value rides along" (it.key * 10) it.value)
    (Ext_array.items a)

let test_sort_custom_cmp () =
  (* Sort by tag: used by the order-restoring step of compaction. *)
  let cells =
    Array.init 10 (fun i -> Cell.item ~tag:(9 - i) ~key:i ~value:0 ())
  in
  let (), a =
    Util.with_array ~b:2 cells (fun _s a ->
        Ext_sort.run Ext_sort.bitonic_windowed ~cmp:Cell.compare_by_tag ~m:4 a)
  in
  let tags = List.map (fun (it : Cell.item) -> it.tag) (Ext_array.items a) in
  Alcotest.(check (list int)) "tags ascending" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] tags

let test_sort_empties_interleaved () =
  (* Empty cells scattered through the input must all sort to the end. *)
  let cells =
    [|
      Cell.item ~key:3 ~value:0 (); Cell.empty; Cell.item ~key:1 ~value:0 ();
      Cell.empty; Cell.item ~key:2 ~value:0 (); Cell.empty;
    |]
  in
  let (), a = Util.with_array ~b:2 cells (fun _s a -> Ext_sort.run Ext_sort.bitonic ~m:2 a) in
  let out = Ext_array.to_cells a in
  Alcotest.(check (list int)) "items first, sorted" [ 1; 2; 3 ]
    (Util.keys_of_items (Ext_array.items a));
  Alcotest.(check bool) "tail all empty" true
    (Array.for_all Cell.is_empty (Array.sub out 3 3))

let sorter_trace sorter ~b ~m keys =
  Util.trace_digest ~b ~seed:0 (Util.cells_of_keys keys) (fun _rng _s a ->
      Ext_sort.run sorter ~m a)

let test_sorters_oblivious () =
  (* Same shape (N, B, m), wildly different data: identical traces. *)
  (* m = 16 so that cache_sort also fits every shape. *)
  let shapes = [ (31, 4, 16); (64, 8, 16); (10, 1, 16) ] in
  List.iter
    (fun sorter ->
      List.iter
        (fun (n, b, m) ->
          let t1 = sorter_trace sorter ~b ~m (Array.init n (fun i -> i)) in
          let t2 = sorter_trace sorter ~b ~m (Array.init n (fun i -> n - i)) in
          let t3 = sorter_trace sorter ~b ~m (Array.make n 7) in
          if not (t1 = t2 && t2 = t3) then
            Alcotest.failf "%s trace depends on data at n=%d" (Ext_sort.name sorter) n)
        shapes)
    Ext_sort.all

let test_windowed_fewer_ios () =
  let keys = Array.init 512 (fun i -> 1000 - i) in
  let io_of sorter =
    let cells = Util.cells_of_keys keys in
    let s = Util.storage ~b:4 () in
    let a = Ext_array.of_cells s ~block_size:4 cells in
    Ext_sort.run sorter ~m:16 a;
    Stats.total (Storage.stats s)
  in
  let naive = io_of Ext_sort.bitonic in
  let windowed = io_of Ext_sort.bitonic_windowed in
  if windowed * 2 > naive then
    Alcotest.failf "windowed (%d IOs) should be well under naive (%d IOs)" windowed naive

(* ---------------- columnsort ---------------- *)

let test_columnsort_plan () =
  (match Columnsort.plan ~n_cells:8192 ~b:8 ~m:256 with
  | Some (r, s) ->
      Alcotest.(check bool) "r multiple of b*s" true (r mod (8 * s) = 0);
      Alcotest.(check bool) "Leighton condition" true (r >= 2 * (s - 1) * (s - 1));
      Alcotest.(check bool) "covers n" true (r * s >= 8192)
  | None -> Alcotest.fail "plan should exist");
  Alcotest.(check bool) "oversized input refused" true
    (Columnsort.plan ~n_cells:10_000_000 ~b:8 ~m:64 = None)

let test_columnsort_correct () =
  let rng = Odex_crypto.Rng.create ~seed:21 in
  List.iter
    (fun (n, b, m) ->
      run_sort_case Ext_sort.columnsort ~b ~m (Util.random_keys rng n ~bound:(4 * n)))
    [ (50, 3, 16); (500, 4, 32); (3000, 8, 64); (200, 4, 32) ];
  run_sort_case Ext_sort.columnsort ~b:4 ~m:16 [| 5; 5; 5; 5; 5; 5; 5; 5; 5 |];
  run_sort_case Ext_sort.columnsort ~b:4 ~m:16 (Array.init 100 (fun i -> 100 - i))

let test_columnsort_oblivious () =
  let n = 400 in
  let t keys = sorter_trace Ext_sort.columnsort ~b:4 ~m:32 keys in
  let t1 = t (Array.init n (fun i -> i)) in
  let t2 = t (Array.init n (fun i -> n - i)) in
  let t3 = t (Array.make n 7) in
  Alcotest.(check bool) "columnsort trace is data-independent" true (t1 = t2 && t2 = t3)

let test_columnsort_dummy_pass () =
  let keys = Array.init 300 (fun i -> 300 - i) in
  let cells = Util.cells_of_keys keys in
  let s = Util.storage ~b:4 () in
  let a = Odex_extmem.Ext_array.of_cells s ~block_size:4 cells in
  Ext_sort.run_selective Ext_sort.columnsort ~real:false ~m:32 a;
  (* Data untouched... *)
  Alcotest.(check (list int)) "dummy pass preserves data" (Array.to_list keys)
    (Util.keys_of_items (Odex_extmem.Ext_array.items a));
  (* ...and the trace equals the real pass's. *)
  let digest real =
    let s = Util.storage ~b:4 () in
    let a = Odex_extmem.Ext_array.of_cells s ~block_size:4 (Util.cells_of_keys keys) in
    Ext_sort.run_selective Ext_sort.columnsort ~real ~m:32 a;
    ( Odex_extmem.Trace.digest (Odex_extmem.Storage.trace s),
      Odex_extmem.Trace.length (Odex_extmem.Storage.trace s) )
  in
  Alcotest.(check bool) "dummy trace = real trace" true (digest true = digest false)

let test_columnsort_linear_ios () =
  (* Columnsort is O(n) passes: I/Os per block must stay ~flat. *)
  let per_block n =
    let keys = Array.init n (fun i -> (i * 7919) mod n) in
    let cells = Util.cells_of_keys keys in
    let s = Util.storage ~b:8 () in
    let a = Odex_extmem.Ext_array.of_cells s ~block_size:8 cells in
    Ext_sort.run Ext_sort.columnsort ~m:256 a;
    Float.of_int (Odex_extmem.Stats.total (Odex_extmem.Storage.stats s))
    /. Float.of_int (n / 8)
  in
  let small = per_block 4096 and big = per_block 32768 in
  if big > small *. 1.6 then
    Alcotest.failf "columnsort not linear: %.1f -> %.1f I/Os per block" small big

let test_columnsort_capacity_raises () =
  let cells = Util.cells_of_keys (Array.init 4000 (fun i -> i)) in
  let s = Util.storage ~b:2 () in
  let a = Odex_extmem.Ext_array.of_cells s ~block_size:2 cells in
  Alcotest.(check bool) "beyond capacity raises" true
    (try
       Ext_sort.run Ext_sort.columnsort ~m:8 a;
       false
     with Invalid_argument _ -> true)

let prop_columnsort_sorts =
  Util.qcheck_case ~name:"columnsort sorts arbitrary keys" ~count:40
    QCheck2.Gen.(pair (list_size (int_range 0 600) (int_range (-100) 100)) (int_range 4 8))
    (fun (keys, b) ->
      let keys = Array.of_list keys in
      let cells = Util.cells_of_keys keys in
      let (), a =
        Util.with_array ~b cells (fun _s a -> Ext_sort.run Ext_sort.columnsort ~m:64 a)
      in
      let got = Util.keys_of_items (Odex_extmem.Ext_array.items a) in
      got = List.sort compare (Array.to_list keys))

let prop_bitonic_sorts =
  Util.qcheck_case ~name:"bitonic-windowed sorts arbitrary keys" ~count:60
    QCheck2.Gen.(pair (list_size (int_range 0 120) (int_range (-50) 50)) (int_range 1 4))
    (fun (keys, b) ->
      let keys = Array.of_list keys in
      let cells = Util.cells_of_keys keys in
      let (), a =
        Util.with_array ~b cells (fun _s a -> Ext_sort.run Ext_sort.bitonic_windowed ~m:4 a)
      in
      let got = Util.keys_of_items (Ext_array.items a) in
      got = List.sort compare (Array.to_list keys))

let suite =
  [
    ("network validation", `Quick, test_network_validation);
    ("network apply", `Quick, test_network_apply);
    ("odd-even merge 0-1 principle", `Slow, test_odd_even_sorts_zero_one);
    ("bitonic 0-1 principle", `Slow, test_bitonic_sorts_zero_one);
    ("odd-even merge known size", `Quick, test_oems_known_size);
    ("network sorts random ints", `Quick, test_network_sorts_random_ints);
    ("merge-split halves", `Quick, test_merge_split);
    ("external sorters correct", `Quick, test_sorters_correct);
    ("cache sort correct", `Quick, test_cache_sort_correct);
    ("cache sort overflow", `Quick, test_cache_sort_overflow);
    ("sort preserves payload", `Quick, test_sort_preserves_payload);
    ("sort by custom comparator", `Quick, test_sort_custom_cmp);
    ("interleaved empties", `Quick, test_sort_empties_interleaved);
    ("sorters are data-oblivious", `Quick, test_sorters_oblivious);
    ("windowing reduces I/Os", `Quick, test_windowed_fewer_ios);
    ("columnsort plan", `Quick, test_columnsort_plan);
    ("columnsort correct", `Quick, test_columnsort_correct);
    ("columnsort oblivious", `Quick, test_columnsort_oblivious);
    ("columnsort dummy pass", `Quick, test_columnsort_dummy_pass);
    ("columnsort linear I/Os", `Quick, test_columnsort_linear_ios);
    ("columnsort capacity", `Quick, test_columnsort_capacity_raises);
    prop_columnsort_sorts;
    prop_bitonic_sorts;
  ]
