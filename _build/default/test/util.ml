(* Shared helpers for the test suites. *)

open Odex_extmem

let storage ?cipher ?(trace = Trace.Digest) ~b () =
  Storage.create ?cipher ~trace_mode:trace ~block_size:b ()

let cells_of_keys keys =
  Array.mapi (fun i k -> Cell.item ~tag:i ~key:k ~value:(k * 10) ()) keys

let random_keys rng n ~bound = Array.init n (fun _ -> Odex_crypto.Rng.int rng bound)

let keys_of_items items = List.map (fun (it : Cell.item) -> it.key) items

let is_sorted_list keys = List.sort compare keys = keys

let sorted_multiset_equal a b = List.sort compare a = List.sort compare b

(* Run [f] on a fresh storage seeded with [cells]; return (result, array). *)
let with_array ?cipher ?trace ~b cells f =
  let s = storage ?cipher ?trace ~b () in
  let a = Ext_array.of_cells s ~block_size:b cells in
  let r = f s a in
  (r, a)

let check_sorted_by_key msg a =
  let keys = keys_of_items (Ext_array.items a) in
  Alcotest.(check bool) (msg ^ ": keys sorted") true (is_sorted_list keys)

let check_multiset msg expected_keys a =
  let keys = keys_of_items (Ext_array.items a) in
  Alcotest.(check bool)
    (msg ^ ": multiset preserved")
    true
    (sorted_multiset_equal keys (Array.to_list expected_keys))

(* Trace digest of running [f] on data [cells] with a fixed-seed rng. *)
let trace_digest ~b ~seed cells f =
  let s = storage ~trace:Trace.Digest ~b () in
  let a = Ext_array.of_cells s ~block_size:b cells in
  let rng = Odex_crypto.Rng.create ~seed in
  f rng s a;
  (Trace.digest (Storage.trace s), Trace.length (Storage.trace s))

let qcheck_case ?(count = 100) ~name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
