type t = { k : int; size : int; key : Prf.key }

let create ~k ~size key =
  if k < 1 then invalid_arg "Hash_family.create: k must be >= 1";
  if size < k then invalid_arg "Hash_family.create: size must be >= k";
  { k; size; key }

let k t = t.k
let size t = t.size

let subrange t i =
  if i < 0 || i >= t.k then invalid_arg "Hash_family.subrange: bad index";
  let width = t.size / t.k in
  let lo = i * width in
  let hi = if i = t.k - 1 then t.size else lo + width in
  (lo, hi)

let hash t i x =
  let lo, hi = subrange t i in
  let v = Int64.to_int (Int64.shift_right_logical (Prf.value_pair t.key i x) 2) in
  lo + (v mod (hi - lo))

let hashes t x = Array.init t.k (fun i -> hash t i x)
