lib/crypto/rng.ml: Float Int64
