lib/crypto/cipher.ml: Bytes Char Int64 Prf
