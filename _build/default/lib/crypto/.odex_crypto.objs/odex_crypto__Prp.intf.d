lib/crypto/prp.mli: Prf
