lib/crypto/cipher.mli: Rng
