lib/crypto/prp.ml: Array Int64 Prf
