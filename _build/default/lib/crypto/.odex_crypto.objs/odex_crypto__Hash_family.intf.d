lib/crypto/hash_family.mli: Prf
