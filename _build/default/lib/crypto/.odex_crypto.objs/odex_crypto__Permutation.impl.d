lib/crypto/permutation.ml: Array Rng
