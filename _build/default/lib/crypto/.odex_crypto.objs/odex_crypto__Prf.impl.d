lib/crypto/prf.ml: Int64 Rng
