lib/crypto/rng.mli:
