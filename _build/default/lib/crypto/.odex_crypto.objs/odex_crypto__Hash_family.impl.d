lib/crypto/hash_family.ml: Array Int64 Prf
