lib/crypto/permutation.mli: Rng
