(** A family of [k] hash functions with pairwise-distinct outputs.

    The invertible Bloom lookup table (paper §2) requires that for any key
    [x] the values h₁(x), …, h_k(x) are distinct; the paper suggests
    achieving this by partitioning the table. This module implements that
    partitioning: a table of [size] cells is split into [k] contiguous
    sub-ranges and h_i maps into the i-th sub-range, so outputs from
    different functions can never collide. *)

type t

val create : k:int -> size:int -> Prf.key -> t
(** [create ~k ~size key] builds the family. Requires [k >= 1] and
    [size >= k]. Sub-range [i] is
    [\[i*(size/k) .. (i+1)*(size/k))] (the last absorbs the remainder). *)

val k : t -> int
(** Number of hash functions. *)

val size : t -> int
(** Total table size the family maps into. *)

val hash : t -> int -> int -> int
(** [hash t i x] is h_i(x), for [0 <= i < k t]. *)

val hashes : t -> int -> int array
(** [hashes t x] is [| h_0(x); …; h_{k-1}(x) |] — always [k] pairwise
    distinct cells. *)

val subrange : t -> int -> int * int
(** [subrange t i] is the half-open interval [(lo, hi)] that h_i maps
    into. *)
