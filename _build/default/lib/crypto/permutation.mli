(** Uniformly random permutations (Fisher–Yates / Knuth shuffle).

    The sorting algorithm's "shuffle-and-deal" step (paper §5) permutes the
    blocks of the consolidated array with the classic algorithm the paper
    cites from Knuth: for i = 0 .. n-1 swap position i with a uniformly
    random position in [\[i, n)]. The adversary may watch the swaps — the
    indices chosen never depend on data values, so the shuffle itself is
    data-oblivious. *)

type t
(** An immutable permutation of {0, …, n−1}. *)

val identity : int -> t
val random : Rng.t -> int -> t

val size : t -> int

val apply : t -> int -> int
(** [apply p i] is the image of [i]: the element at source position [i]
    moves to destination [apply p i]. *)

val preimage : t -> int -> int
(** [preimage p j] is the source position mapped to [j]; inverse of
    [apply]. *)

val inverse : t -> t

val swap_sequence : Rng.t -> int -> (int * int) array
(** [swap_sequence rng n] is the raw Fisher–Yates transcript: the sequence
    of [(i, j)] swaps with [i <= j] that the shuffle performs. Algorithms
    that shuffle data held in external memory replay exactly these swaps so
    the adversary-visible I/O pattern is the canonical shuffle pattern. *)

val of_swaps : int -> (int * int) array -> t
(** Permutation obtained by applying the given swaps to the identity. *)

val permute_array : t -> 'a array -> 'a array
(** [permute_array p a] is the array with [a.(i)] placed at position
    [apply p i]. *)

val is_valid : t -> bool
(** Checks bijectivity (used by tests). *)
