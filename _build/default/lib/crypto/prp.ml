type t = { domain : int; bits : int; half : int; keys : Prf.key array }

let rounds = 4

let create ~domain key =
  if domain < 1 then invalid_arg "Prp.create: domain must be >= 1";
  (* Even bit-width >= 2 covering the domain. *)
  let rec width b = if 1 lsl b >= domain then b else width (b + 1) in
  let bits = max 2 (width 1) in
  let bits = if bits land 1 = 1 then bits + 1 else bits in
  let keys =
    Array.init rounds (fun r -> Prf.key_of_int (Int64.to_int (Prf.value key r) lxor r))
  in
  { domain; bits; half = bits / 2; keys }

let domain t = t.domain

let round_fn t r x = Int64.to_int (Prf.value t.keys.(r) x) land ((1 lsl t.half) - 1)

let feistel t x =
  let mask = (1 lsl t.half) - 1 in
  let l = ref (x lsr t.half) and r = ref (x land mask) in
  for i = 0 to rounds - 1 do
    let l', r' = (!r, !l lxor round_fn t i !r) in
    l := l';
    r := r'
  done;
  (!l lsl t.half) lor !r

let feistel_inv t y =
  let mask = (1 lsl t.half) - 1 in
  let l = ref (y lsr t.half) and r = ref (y land mask) in
  for i = rounds - 1 downto 0 do
    let l', r' = (!r lxor round_fn t i !l, !l) in
    l := l';
    r := r'
  done;
  (!l lsl t.half) lor !r

(* Cycle-walking: iterate the power-of-two PRP until landing back in the
   domain; this restriction is itself a permutation of the domain. *)
let apply t x =
  if x < 0 || x >= t.domain then invalid_arg "Prp.apply: out of domain";
  let rec walk y =
    let y = feistel t y in
    if y < t.domain then y else walk y
  in
  walk x

let inverse t y =
  if y < 0 || y >= t.domain then invalid_arg "Prp.inverse: out of domain";
  let rec walk x =
    let x = feistel_inv t x in
    if x < t.domain then x else walk x
  in
  walk y
