type t = int array
(* [t.(i)] is the destination of source position [i]. *)

let identity n = Array.init n (fun i -> i)

let size t = Array.length t

let swap_sequence rng n =
  Array.init n (fun i -> (i, if i = n - 1 then i else Rng.int_in_range rng ~lo:i ~hi:(n - 1)))

let of_swaps n swaps =
  (* Apply the swaps to the array [0; …; n-1] read as "contents", then
     invert: contents.(j) = i means source i ends at destination j. *)
  let contents = Array.init n (fun i -> i) in
  Array.iter
    (fun (a, b) ->
      let tmp = contents.(a) in
      contents.(a) <- contents.(b);
      contents.(b) <- tmp)
    swaps;
  let dest = Array.make n 0 in
  Array.iteri (fun j i -> dest.(i) <- j) contents;
  dest

let random rng n = of_swaps n (swap_sequence rng n)

let apply t i = t.(i)

let inverse t =
  let n = Array.length t in
  let inv = Array.make n 0 in
  Array.iteri (fun i j -> inv.(j) <- i) t;
  inv

let preimage t j = (inverse t).(j)

let permute_array t a =
  let n = Array.length a in
  if n <> Array.length t then invalid_arg "Permutation.permute_array: size mismatch";
  if n = 0 then [||]
  else begin
    let out = Array.make n a.(0) in
    Array.iteri (fun i x -> out.(t.(i)) <- x) a;
    out
  end

let is_valid t =
  let n = Array.length t in
  let seen = Array.make n false in
  Array.for_all
    (fun j ->
      if j < 0 || j >= n || seen.(j) then false
      else begin
        seen.(j) <- true;
        true
      end)
    t
