type key = Prf.key

let key_of_int = Prf.key_of_int
let fresh_key = Prf.fresh_key

(* Keystream block [i] for a given nonce is PRF(key, nonce, i): 8 bytes. *)
let xor_stream k ~nonce src =
  let len = Bytes.length src in
  let dst = Bytes.create len in
  let i = ref 0 in
  let word = ref 0L in
  while !i < len do
    if !i land 7 = 0 then word := Prf.value_pair k nonce (!i lsr 3);
    let ks_byte = Int64.to_int (Int64.shift_right_logical !word ((!i land 7) * 8)) land 0xff in
    Bytes.unsafe_set dst !i (Char.chr (Char.code (Bytes.unsafe_get src !i) lxor ks_byte));
    incr i
  done;
  dst

let encrypt k ~nonce plain = xor_stream k ~nonce plain
let decrypt k ~nonce cipher = xor_stream k ~nonce cipher
