(** Keyed pseudorandom permutation on a bounded integer domain.

    The square-root ORAM needs the client to evaluate a secret
    permutation π of the storage positions in O(1) private work without
    storing π. A 4-round Feistel network over the PRF gives a PRP on a
    power-of-two domain; cycle-walking restricts it to an arbitrary
    domain size. *)

type t

val create : domain:int -> Prf.key -> t
(** Permutation of {0, …, domain−1}. Requires [domain >= 1]. *)

val domain : t -> int

val apply : t -> int -> int
(** [apply t x] = π(x); a bijection on the domain. *)

val inverse : t -> int -> int
(** π⁻¹; [inverse t (apply t x) = x]. *)
