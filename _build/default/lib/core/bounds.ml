let log2 x = Float.log x /. Float.log 2.

let binomial_tail_lemma22 ~gamma ~mu =
  if gamma <= 2. *. Float.exp 1. then 1.
  else Float.min 1. (Float.pow 2. (-.gamma *. mu *. log2 (gamma /. Float.exp 1.)))

let negative_binomial_tail_lemma23 ~n ~p ~t =
  if p <= 0. || p > 1. || n <= 0 then invalid_arg "Bounds.negative_binomial_tail_lemma23";
  let alpha = 1. /. p in
  let nf = Float.of_int n in
  let bound =
    if t < alpha /. 2. then Float.exp (-.((t *. p) ** 2.) *. nf /. 3.)
    else if t < alpha then Float.exp (-.t *. p *. nf /. 9.)
    else if t < 2. *. alpha then Float.exp (-.t *. p *. nf /. 5.)
    else if t < 3. *. alpha then Float.exp (-.t *. p *. nf /. 3.)
    else Float.exp (-.t *. p *. nf /. 2.)
  in
  Float.min 1. bound

let loose_compaction_failure ~n_blocks ~c0 ~c1 =
  if n_blocks < 2 then 0.
  else begin
    let n = Float.of_int n_blocks in
    let region = Float.of_int c1 *. log2 n in
    (* Survival probability per block after c0 thinning rounds. *)
    let q = Float.pow 0.25 (Float.of_int c0) in
    let mu = region *. q in
    let gamma = region /. 2. /. mu in
    let per_region = binomial_tail_lemma22 ~gamma ~mu in
    Float.min 1. (n /. region *. per_region)
  end

let selection_failure ~n =
  if n < 16 then 1.
  else begin
    let nf = Float.of_int n in
    let a = 2. *. Float.exp (-.Float.pow nf (1. /. 8.) /. 9.) in
    let b = Float.exp (-4. *. Float.pow nf (3. /. 8.) /. 5.) in
    let c = Float.exp (-.Float.pow nf (1. /. 4.) /. 3.) in
    let d = Float.exp (-.Float.pow nf (1. /. 4.) /. 2.) in
    Float.min 1. (a +. b +. c +. d)
  end

let shuffle_deal_overflow ~m_blocks ~d =
  let m = Float.of_int m_blocks in
  let c = (2. *. Float.of_int d *. Float.exp 1.) +. 1. in
  let mu = Float.sqrt m in
  binomial_tail_lemma22 ~gamma:c ~mu
