open Odex_extmem

type outcome = { dest : Ext_array.t; recovered : int; complete : bool }

let run ?(k = 3) ?(multiplier = 3) ~m ~key ~capacity a =
  if capacity < 0 then invalid_arg "Sparse_compaction.run: negative capacity";
  let n = Ext_array.blocks a in
  let b = Ext_array.block_size a in
  let storage = Ext_array.storage a in
  let cells = max (k + 1) (multiplier * capacity) in
  let table = Odex_iblt.Ext_iblt.create storage ~k ~cells key in
  if Odex_iblt.Ext_iblt.table_blocks table > m then
    invalid_arg
      (Printf.sprintf
         "Sparse_compaction.run: IBLT table (%d blocks) exceeds cache (m = %d); use the \
          ORAM-backed decode"
         (Odex_iblt.Ext_iblt.table_blocks table)
         m);
  (* Insertion phase: one read of A'[i] plus k cell read-modify-writes
     per index, occupied or not — the Theorem 4 oblivious trace. *)
  let occupied = ref 0 in
  for i = 0 to n - 1 do
    let blk = Ext_array.read_block a i in
    if Block.is_empty blk then Odex_iblt.Ext_iblt.touch table ~index:i
    else begin
      incr occupied;
      Odex_iblt.Ext_iblt.insert table ~index:i blk
    end
  done;
  (* Over-capacity inputs violate the problem statement ("at most R
     distinguished"); we must not branch on it (the trace would leak),
     so it degrades into an incomplete outcome below. *)
  (* Decode privately (table fits in cache), restore original order with
     a private sort on the block indices, and write out exactly
     [capacity] blocks. *)
  let pairs, complete = Odex_iblt.Ext_iblt.decode_in_cache table ~m in
  let pairs = List.sort (fun (i, _) (j, _) -> compare i j) pairs in
  let dest = Ext_array.create storage ~blocks:capacity in
  let remaining = ref pairs in
  for slot = 0 to capacity - 1 do
    let blk =
      match !remaining with
      | (_, blk) :: rest ->
          remaining := rest;
          blk
      | [] -> Block.make b
    in
    Ext_array.write_block dest slot blk
  done;
  let written = min capacity (List.length pairs) in
  { dest; recovered = written; complete = complete && written = !occupied }
