lib/core/oblivious.ml: Array Cell Ext_array Format List Odex_crypto Odex_extmem Storage Trace
