lib/core/consolidation.mli: Cell Ext_array Odex_extmem
