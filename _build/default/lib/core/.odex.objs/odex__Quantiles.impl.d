lib/core/quantiles.ml: Array Block Cache Cell Compaction Consolidation Emodel Ext_array Float List Odex_extmem Odex_sortnet Option Selection
