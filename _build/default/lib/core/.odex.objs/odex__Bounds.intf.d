lib/core/bounds.mli:
