lib/core/loose_compaction.ml: Block Cache Emodel Ext_array Float List Odex_extmem Odex_sortnet Printf Thinning
