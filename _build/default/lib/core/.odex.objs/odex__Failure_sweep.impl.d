lib/core/failure_sweep.ml: Array Ext_array Odex_extmem Odex_sortnet
