lib/core/multiway.mli: Cell Ext_array Odex_extmem
