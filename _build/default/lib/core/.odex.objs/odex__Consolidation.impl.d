lib/core/consolidation.ml: Array Block Cell Ext_array Odex_extmem Queue Storage
