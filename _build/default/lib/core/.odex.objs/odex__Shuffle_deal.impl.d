lib/core/shuffle_deal.ml: Array Block Emodel Ext_array Odex_crypto Odex_extmem Queue Storage
