lib/core/oblivious.mli: Cell Ext_array Format Odex_crypto Odex_extmem Storage
