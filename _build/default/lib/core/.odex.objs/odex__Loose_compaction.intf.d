lib/core/loose_compaction.mli: Ext_array Odex_crypto Odex_extmem Odex_sortnet
