lib/core/thinning.ml: Block Ext_array Odex_crypto Odex_extmem Storage
