lib/core/logstar_compaction.mli: Ext_array Odex_crypto Odex_extmem
