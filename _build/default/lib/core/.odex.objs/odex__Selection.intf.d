lib/core/selection.mli: Cell Ext_array Odex_crypto Odex_extmem
