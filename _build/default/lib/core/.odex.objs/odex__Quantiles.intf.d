lib/core/quantiles.mli: Cell Ext_array Odex_crypto Odex_extmem
