lib/core/multiway.ml: Array Block Cell Ext_array List Odex_extmem Queue Storage
