lib/core/failure_sweep.mli: Ext_array Odex_extmem
