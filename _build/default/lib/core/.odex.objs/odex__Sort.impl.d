lib/core/sort.ml: Array Block Butterfly Cell Compaction Consolidation Emodel Ext_array Failure_sweep Float List Multiway Odex_crypto Odex_extmem Odex_sortnet Shuffle_deal
