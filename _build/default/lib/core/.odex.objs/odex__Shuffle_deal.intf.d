lib/core/shuffle_deal.mli: Cell Ext_array Odex_crypto Odex_extmem
