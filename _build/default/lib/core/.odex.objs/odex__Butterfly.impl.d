lib/core/butterfly.ml: Array Block Cache Cell Emodel Ext_array List Odex_extmem Storage
