lib/core/compaction.mli: Cell Ext_array Odex_crypto Odex_extmem Odex_sortnet
