lib/core/thinning.mli: Ext_array Odex_crypto Odex_extmem
