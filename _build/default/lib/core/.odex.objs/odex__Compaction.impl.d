lib/core/compaction.ml: Butterfly Consolidation Emodel Ext_array Loose_compaction Odex_crypto Odex_extmem Printf Sparse_compaction
