lib/core/selection.ml: Array Block Cache Cell Compaction Consolidation Emodel Ext_array Float List Odex_crypto Odex_extmem Odex_sortnet Queue
