lib/core/sparse_compaction.ml: Block Ext_array List Odex_extmem Odex_iblt Printf
