lib/core/logstar_compaction.ml: Array Block Butterfly Cache Emodel Ext_array Float Hashtbl List Odex_crypto Odex_extmem Sparse_compaction Thinning
