lib/core/butterfly.mli: Ext_array Odex_extmem
