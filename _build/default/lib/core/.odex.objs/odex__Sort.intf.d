lib/core/sort.mli: Ext_array Odex_crypto Odex_extmem
