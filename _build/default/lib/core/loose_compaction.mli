(** Loose compaction — Theorem 8.

    Compacts a consolidated array of n blocks, at most [capacity] = r of
    them occupied (r <= n/4), into an array of 5r blocks using O(n) I/Os:

    + c₀ rounds of A-to-C thinning passes into the first 4r output
      blocks, after which each block survives in A independently with
      probability at most 4^{-c₀};
    + repeatedly: split A into regions of c₁·log n blocks, compact each
      region in-cache to its first half (whp no region holds more —
      Lemma 7), halving A, then thin again;
    + once A is below the n/log²_m n threshold, compress what is left
      with the deterministic oblivious sort (Lemma 2) and append those r
      blocks as output blocks [4r, 5r).

    Requires the paper's wide-block/tall-cache regime in the form
    c₁·log₂ n <= m (a region must fit in cache). The input array is
    consumed (its blocks are cleared as they move). Not order-
    preserving. The trace is independent of the data and, for a fixed
    RNG seed, identical across inputs of the same shape. *)

open Odex_extmem

type outcome = {
  dest : Ext_array.t;  (** 5 · capacity blocks holding every occupied input block. *)
  ok : bool;
      (** False iff some region overflowed (the Theorem 8 failure event,
          probability <= (N/B)^{-d}); blocks may have been dropped. *)
}

val run :
  ?c0:int ->
  ?c1:int ->
  ?sorter:Odex_sortnet.Ext_sort.t ->
  m:int ->
  rng:Odex_crypto.Rng.t ->
  capacity:int ->
  Ext_array.t ->
  outcome
(** Defaults: c₀ = 4 thinning rounds per iteration, c₁ = 3, sorter =
    {!Odex_sortnet.Ext_sort.auto}. *)
