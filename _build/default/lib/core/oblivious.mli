(** The adversary's experiment: trace-equality auditing.

    The paper's §1 definition makes an algorithm data-oblivious when the
    trace distribution is the same for every memory configuration of the
    same size. For our algorithms the randomness is a seeded stream, so
    the definition has a sharp testable form: {e fixing the coins and
    varying only the data must produce byte-identical traces}. This
    module runs that experiment — it is what experiment E11 and the
    audit example print, and what the per-algorithm trace tests assert. *)

open Odex_extmem

type subject = {
  name : string;
  run : Odex_crypto.Rng.t -> Storage.t -> Ext_array.t -> unit;
      (** The algorithm under audit, applied to an array living on the
          given storage. *)
}

type observation = {
  input : string;  (** Label of the input class. *)
  length : int;  (** Number of I/Os Bob observed. *)
  digest : int64;  (** Order-sensitive hash of the address sequence. *)
}

type report = {
  subject : string;
  observations : observation list;
  oblivious : bool;  (** All observations identical. *)
}

val input_classes : rng:Odex_crypto.Rng.t -> n:int -> (string * Cell.t array) list
(** Canonical contrasting inputs of [n] cells: ascending, descending,
    all-equal, uniform random, and one-third-empty. All have the same
    shape (n cells), which is what obliviousness is conditioned on. *)

val audit :
  ?seed:int -> b:int -> inputs:(string * Cell.t array) list -> subject -> report
(** [audit ~b ~inputs s] runs [s] once per input on a fresh storage with
    identical coins and compares the traces. *)

val pp_report : Format.formatter -> report -> unit
