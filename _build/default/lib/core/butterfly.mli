(** The butterfly-like compaction network — Figure 1, Lemma 5, Theorem 6.

    Tight order-preserving compaction of a {e consolidated} array (every
    block full or empty, per Lemma 3) at block granularity. Cell j of
    level L_i is connected to cells j and j − 2^i of level L_{i+1}; an
    occupied block labelled with its remaining leftward distance d moves
    by (d mod 2^{i+1}), and Lemma 5 guarantees the routing is
    collision-free. Processing Θ(log m) consecutive levels per sliding
    cache window turns the O(n log n) naive cost into
    O(n log n / log m) = O((N/B) log_{M/B}(N/B)) I/Os — Theorem 6.

    Every block is read once and written once per phase, in an order
    that depends only on (n, m), so the network is data-oblivious (it is
    a circuit simulation).

    Distance labels ride in the items' [aux] scratch word (the [tag]
    user field is preserved); [aux] is zeroed when routing completes. *)

open Odex_extmem

exception Collision of { level : int; position : int }
(** Raised if two blocks route to the same cell — impossible for valid
    labels (Lemma 5); exercised by tests with corrupted labels. *)

val compact : m:int -> Ext_array.t -> int
(** [compact ~m a] routes every occupied block of [a] to the front,
    preserving their relative order, and empties the rest. Returns the
    number of occupied blocks. Requires [m >= 3] (the paper's M >= 3B).
    Input blocks must each be full or empty (consolidate first); the one
    partial block Lemma 3 allows is fine anywhere. *)

val expand : m:int -> Ext_array.t -> (int -> int) -> unit
(** [expand ~m a factor] is the reverse network (paper: "we can also use
    this method in reverse"): the occupied block whose current position
    has rank i (0-based) moves [factor i] positions to the right.
    Destinations [position + factor rank] must be strictly increasing
    and within bounds. Implemented as the compaction network run
    backwards in time, so it inherits Lemma 5's collision-freedom. Used
    by the failure-sweeping step of Theorem 21. *)

val naive_levels : Ext_array.t -> int list list
(** Diagnostic used by the Figure 1 experiment: simulate the network
    level by level {e in RAM} (uncounted) and return, per level, the
    remaining-distance label of each position (-1 for empty cells) —
    the numbers printed in Figure 1. *)
