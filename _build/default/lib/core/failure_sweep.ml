open Odex_extmem

let sweep ~m subarrays ok_flags =
  let k = Array.length subarrays in
  if Array.length ok_flags <> k then invalid_arg "Failure_sweep.sweep: flag count mismatch";
  Array.iteri
    (fun i a ->
      ignore (Ext_array.block_size a);
      Odex_sortnet.Ext_sort.run_selective Odex_sortnet.Ext_sort.auto ~real:(not ok_flags.(i)) ~m
        a)
    subarrays;
  true
