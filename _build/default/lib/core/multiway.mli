(** (q+1)-way data consolidation — paper §5.

    One scan that reorganizes an array into {e monochromatic} blocks:
    every output block is either completely full of items of one color,
    or completely empty, except for at most one partial block per color
    flushed at the end. Alice keeps one pending group per color (fewer
    than B items each, plus the incoming block), so her memory use is
    (colors + 1)·B words — within M for colors <= m. The write pattern
    is one output block per input block plus a [colors]-block tail,
    independent of the data. *)

open Odex_extmem

val tail_blocks : int -> int
(** [tail_blocks colors] is the fixed number of flush blocks appended
    after the scan (2·colors + 4 — enough for the worst-case pending
    buffer even when a single color hoards it). *)

val consolidate :
  colors:int -> color_of:(Cell.item -> int) -> Ext_array.t -> Ext_array.t
(** [consolidate ~colors ~color_of a] returns a fresh array of
    [blocks a + tail_blocks colors] blocks. [color_of] must return
    values in [0, colors). Relative order within each color is
    preserved. *)

val monochromatic : color_of:(Cell.item -> int) -> Ext_array.t -> bool
(** Test helper (uncounted): every block's items share one color. *)
