open Odex_extmem

(* Pending-size invariant: after each read-emit step the total number of
   buffered items is at most (colors)(B-1) + B — whenever it exceeds
   colors·(B-1), some group holds a full block and the step drains it.
   The tail therefore fits in 2·colors + 4 blocks even when one color
   hoards the whole budget (monochromatic fragmentation costs at most
   one partial block per color plus ceil(budget/B) for the hoarder). *)
let tail_blocks colors = (2 * colors) + 4

let consolidate ~colors ~color_of a =
  if colors < 1 then invalid_arg "Multiway.consolidate: colors must be >= 1";
  let n = Ext_array.blocks a in
  let b = Ext_array.block_size a in
  let dst = Ext_array.create (Ext_array.storage a) ~blocks:(n + tail_blocks colors) in
  let groups = Array.init colors (fun _ -> Queue.create ()) in
  let take_in blk =
    Array.iter
      (fun c ->
        match c with
        | Cell.Empty -> ()
        | Cell.Item it ->
            let color = color_of it in
            if color < 0 || color >= colors then
              invalid_arg "Multiway.consolidate: color out of range";
            Queue.add it groups.(color))
      blk
  in
  (* Emit a full block of the first color that has one, else an empty
     block; the choice is Alice-private and the write happens either
     way. *)
  let emit_full () =
    let blk = Block.make b in
    let rec find color =
      if color >= colors then ()
      else if Queue.length groups.(color) >= b then
        for slot = 0 to b - 1 do
          blk.(slot) <- Cell.Item (Queue.pop groups.(color))
        done
      else find (color + 1)
    in
    find 0;
    blk
  in
  (* Tail: drain the largest group, at most one block's worth per write. *)
  let emit_tail () =
    let blk = Block.make b in
    let largest = ref 0 in
    Array.iteri
      (fun c g -> if Queue.length g > Queue.length groups.(!largest) then largest := c)
      groups;
    let g = groups.(!largest) in
    let count = min b (Queue.length g) in
    for slot = 0 to count - 1 do
      blk.(slot) <- Cell.Item (Queue.pop g)
    done;
    blk
  in
  for i = 0 to n - 1 do
    take_in (Ext_array.read_block a i);
    Ext_array.write_block dst i (emit_full ())
  done;
  for t = 0 to tail_blocks colors - 1 do
    Ext_array.write_block dst (n + t) (emit_tail ())
  done;
  assert (Array.for_all Queue.is_empty groups);
  dst

let monochromatic ~color_of a =
  let s = Ext_array.storage a in
  let ok = ref true in
  for i = 0 to Ext_array.blocks a - 1 do
    let colors_in_block =
      List.sort_uniq compare
        (List.map color_of (Block.items (Storage.unchecked_peek s (Ext_array.addr a i))))
    in
    if List.length colors_in_block > 1 then ok := false
  done;
  !ok
