(** Chernoff-bound calculators — Appendix A (Lemmas 22 and 23).

    The paper's constants (c₀ thinning rounds, c₁ region size, the
    shuffle-and-deal constant c) are "determined in the analysis"; these
    functions make that analysis executable so tests and the experiment
    harness can check the advertised failure probabilities against
    Monte-Carlo estimates (experiment E13) and derive constants for a
    target exponent d. *)

val binomial_tail_lemma22 : gamma:float -> mu:float -> float
(** Lemma 22: for a sum X of independent 0–1 variables with E[X] <= mu
    and gamma > 2e, an upper bound on Pr(X > gamma·mu):
    2^{-gamma·mu·log2(gamma/e)}. *)

val negative_binomial_tail_lemma23 : n:int -> p:float -> t:float -> float
(** Lemma 23: for X the sum of [n] independent geometric(p) variables
    (alpha = 1/p), an upper bound on Pr(X > (alpha + t)·n), using the
    case analysis of the lemma. *)

val loose_compaction_failure : n_blocks:int -> c0:int -> c1:int -> float
(** Lemma 7 instantiated: probability that some region of c₁·log₂ n
    blocks keeps more than half its blocks after c₀ thinning rounds
    (union bound over regions). *)

val selection_failure : n:int -> float
(** Lemma 11's additive failure-probability bound for selection on [n]
    items. *)

val shuffle_deal_overflow : m_blocks:int -> d:int -> float
(** Lemma 18: probability that a window of (M/B)^{3/4} blocks contains
    more than c·(M/B)^{1/2} blocks of one color, for the c implied by
    exponent [d]. *)
