open Odex_extmem

type subject = {
  name : string;
  run : Odex_crypto.Rng.t -> Storage.t -> Ext_array.t -> unit;
}

type observation = { input : string; length : int; digest : int64 }

type report = { subject : string; observations : observation list; oblivious : bool }

let input_classes ~rng ~n =
  let item ~tag ~key = Cell.item ~tag ~key ~value:(key * 3) () in
  [
    ("ascending", Array.init n (fun i -> item ~tag:i ~key:i));
    ("descending", Array.init n (fun i -> item ~tag:i ~key:(n - i)));
    ("all-equal", Array.init n (fun i -> item ~tag:i ~key:7));
    ("random", Array.init n (fun i -> item ~tag:i ~key:(Odex_crypto.Rng.int rng (4 * n))));
    ( "sparse",
      Array.init n (fun i -> if i mod 3 = 0 then Cell.empty else item ~tag:i ~key:(i * 5 mod n))
    );
  ]

let audit ?(seed = 0x0b5e) ~b ~inputs subject =
  let observations =
    List.map
      (fun (label, cells) ->
        let s = Storage.create ~trace_mode:Trace.Digest ~block_size:b () in
        let a = Ext_array.of_cells s ~block_size:b cells in
        let rng = Odex_crypto.Rng.create ~seed in
        subject.run rng s a;
        { input = label; length = Trace.length (Storage.trace s); digest = Trace.digest (Storage.trace s) })
      inputs
  in
  let oblivious =
    match observations with
    | [] -> true
    | o :: rest -> List.for_all (fun o' -> o'.length = o.length && o'.digest = o.digest) rest
  in
  { subject = subject.name; observations; oblivious }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s: %s@," r.subject
    (if r.oblivious then "OBLIVIOUS (all traces identical)" else "TRACES DIFFER");
  List.iter
    (fun o ->
      Format.fprintf ppf "  %-12s %8d I/Os  digest %016Lx@," o.input o.length o.digest)
    r.observations;
  Format.fprintf ppf "@]"
