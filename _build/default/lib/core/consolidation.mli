(** Data consolidation — Lemma 3.

    One data-oblivious scan turns an array with at most R distinguished
    elements into an array of ⌈N/B⌉ blocks in which every block is
    completely full of distinguished elements or completely empty, except
    possibly the last (partially full) one — and the relative order of
    distinguished elements is preserved. Alice holds fewer than 2B
    pending items, so M >= 2B suffices. *)

open Odex_extmem

val run :
  ?distinguished:(Cell.item -> bool) -> into:Ext_array.t option -> Ext_array.t -> Ext_array.t
(** [run ~distinguished ~into a] scans [a] once and writes the
    consolidated blocks to [into] (must have [blocks a] blocks; freshly
    allocated when [None]). Items failing [distinguished] (default:
    every item) are discarded, as are empties. Exactly
    [blocks a] reads and [blocks a] writes, independent of the data. *)

val occupied_prefix_property : Ext_array.t -> bool
(** Test helper: checks the Lemma 3 postcondition — every block is full
    or empty, except that the {e last non-empty} block may be partial. *)
