(** Randomized data-thinning passes (paper §3, loose compaction).

    An A-to-C thinning pass scans A once; for each block A[i] it draws a
    uniformly random index j into C, reads C[j], and — when A[i] is
    occupied and C[j] is empty — moves A[i] into C[j] (clearing A[i]).
    In every case exactly the same four I/Os happen: read A[i], read
    C[j], write C[j], write A[i]; only the (encrypted) contents differ,
    so the pass is data-oblivious. A block that was already moved is
    empty in A, which is precisely the paper's "simple bit associated
    with A[i]". *)

open Odex_extmem

val pass : rng:Odex_crypto.Rng.t -> src:Ext_array.t -> dst:Ext_array.t -> unit
(** One thinning pass; destructive on [src] (moved blocks become empty).
    4 · blocks(src) I/Os. *)

val occupied_blocks : Ext_array.t -> int
(** Uncounted diagnostic: number of non-empty blocks. *)
