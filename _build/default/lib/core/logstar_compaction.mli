(** Loose compaction without the wide-block/tall-cache assumptions —
    Theorem 9 / Appendix B.

    Compacts a consolidated array of n blocks with at most [capacity] =
    r <= n/4 occupied into 4.25r blocks using O(n log* n) I/Os, assuming
    only B >= 1 and M >= 2B. The phase structure follows the appendix:

    + c₀ initial A-to-D thinning passes into the 4r main region, after
      which at most r/t₁⁴ blocks survive (Lemma 24, t₁ = 4);
    + phase i (tower-of-twos t_{i+1} = 2^{t_i}): a thinning-out step
      through an auxiliary array C of r/t_i blocks (two A-to-C passes,
      t_i C-to-D passes, then A grows by C), and a region-compaction
      step — regions of min(m, 2^{4 t_i}) blocks are compacted in-cache
      to a 1/t_i² prefix and the prefixes get t_i² extra thinning
      passes;
    + once the survivor budget r/t_i⁴ falls below the sparse threshold,
      one Theorem 4 compaction moves everything left into the 0.25r
      reserve at the end of D.

    Survivors that overflow a region prefix are left in place (they are
    swept up by the final Theorem 4 step), so the only failure mode is
    the final compaction's capacity/decode check, reported in [ok]. The
    trace depends only on (n, r, m, B) and the coins. Not
    order-preserving. The input array is consumed. *)

open Odex_extmem

type outcome = {
  dest : Ext_array.t;  (** ceil(4.25 · capacity) blocks. *)
  phases : int;  (** Number of tower phases executed (<= log* n). *)
  ok : bool;
}

val run :
  ?c0:int ->
  ?key:Odex_crypto.Prf.key ->
  ?sparse_threshold:int ->
  m:int ->
  rng:Odex_crypto.Rng.t ->
  capacity:int ->
  Ext_array.t ->
  outcome
(** Default c₀ = 8 initial passes (survival probability 4^{-8} per
    block; the paper's analysis uses c₀ >= 23 to get theorem-grade
    exponents). [sparse_threshold] overrides the n/log²n cut-over to the
    final Theorem 4 step — the tower constants put every feasible n in
    the zero-phase regime (r/t₁⁴ = r/256 < n/log²n needs log n > 32), so
    the experiment harness forces phases with [~sparse_threshold:0]. *)
