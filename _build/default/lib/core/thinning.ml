open Odex_extmem

let pass ~rng ~src ~dst =
  let n = Ext_array.blocks src in
  let c_size = Ext_array.blocks dst in
  if c_size = 0 then invalid_arg "Thinning.pass: destination has no blocks";
  let b = Ext_array.block_size src in
  for i = 0 to n - 1 do
    let blk = Ext_array.read_block src i in
    let j = Odex_crypto.Rng.int rng c_size in
    let target = Ext_array.read_block dst j in
    if (not (Block.is_empty blk)) && Block.is_empty target then begin
      Ext_array.write_block dst j blk;
      Ext_array.write_block src i (Block.make b)
    end
    else begin
      Ext_array.write_block dst j target;
      Ext_array.write_block src i blk
    end
  done

let occupied_blocks a =
  let n = Ext_array.blocks a in
  let s = Ext_array.storage a in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if not (Block.is_empty (Storage.unchecked_peek s (Ext_array.addr a i))) then incr count
  done;
  !count
