(** Tight order-preserving compaction for sparse arrays — Theorem 4.

    The input is a {e consolidated} array (Lemma 3) of n blocks, at most
    [capacity] of them occupied. Every block index is mapped through an
    invertible Bloom lookup table of [multiplier * capacity] cells (the
    paper uses 3r): occupied blocks are inserted under their index as
    key, unoccupied indices perform the bit-identical dummy pass, so the
    insertion phase's trace depends only on n — not on which blocks are
    occupied. The table is then decoded and the recovered blocks written
    to a fresh array of exactly [capacity] blocks in their original
    order.

    Decode path: the paper simulates [listEntries] under the
    Goodrich–Mitzenmacher ORAM. When the table fits in Alice's cache
    (the common case for the sparse regime r = O(n/log² n) this theorem
    targets) we read it in one scan and peel privately, which has a
    strictly smaller — and still fixed — trace. For tables larger than
    the cache the {!Compaction} facade routes to the Theorem 6 butterfly
    engine instead (a dispatch on public parameters only; DESIGN.md §5
    records the substitution — the ORAM substrate itself lives in
    [Odex_oram] and is measured in E10). *)

open Odex_extmem

type outcome = {
  dest : Ext_array.t;  (** [capacity] blocks; occupied prefix in original order. *)
  recovered : int;  (** Number of occupied blocks recovered (Alice-private). *)
  complete : bool;
      (** Whether the IBLT decode recovered everything — the Theorem 4
          success event, true with probability 1 − 1/r^c. The trace is
          identical either way. *)
}

val run :
  ?k:int ->
  ?multiplier:int ->
  m:int ->
  key:Odex_crypto.Prf.key ->
  capacity:int ->
  Ext_array.t ->
  outcome
(** [run ~m ~key ~capacity a] compacts consolidated [a]. Requires the
    table ([multiplier * capacity] cells, default multiplier 3, k = 3
    hash functions) to fit in the [m]-block cache. If more than
    [capacity] blocks turn out to be occupied (a violation of the
    problem statement) the outcome is flagged incomplete rather than
    raising — branching on the overflow would leak it to the
    adversary. *)
