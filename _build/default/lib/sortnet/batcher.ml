let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Knuth's iterative formulation of Batcher's odd-even merge sort, defined
   on the next power of two; comparators whose upper end lies in the +∞
   padding are no-ops and are dropped, which is sound because every
   comparator is ascending. *)
let odd_even_merge_sort n =
  if n < 0 then invalid_arg "Batcher.odd_even_merge_sort: negative width";
  if n <= 1 then Network.create ~width:n []
  else begin
    let n2 = next_power_of_two n in
    let levels = ref [] in
    let p = ref 1 in
    while !p < n2 do
      let k = ref !p in
      while !k >= 1 do
        let level = ref [] in
        let j = ref (!k mod !p) in
        while !j <= n2 - 1 - !k do
          let i_max = min (!k - 1) (n2 - !j - !k - 1) in
          for i = 0 to i_max do
            if (i + !j) / (2 * !p) = (i + !j + !k) / (2 * !p) then begin
              let lo = i + !j and hi = i + !j + !k in
              if hi < n then level := (lo, hi) :: !level
            end
          done;
          j := !j + (2 * !k)
        done;
        if !level <> [] then levels := List.rev !level :: !levels;
        k := !k / 2
      done;
      p := !p * 2
    done;
    Network.create ~width:n (List.rev !levels)
  end

(* Normalized bitonic sorter: each stage of segment size 2^s begins with a
   "flip" level pairing mirrored positions within the segment, followed by
   plain butterfly levels of strides 2^{s-2} .. 1. All comparators are
   ascending. *)
let bitonic n =
  if not (is_power_of_two n) && n <> 0 then
    invalid_arg "Batcher.bitonic: width must be a power of two";
  if n <= 1 then Network.create ~width:n []
  else begin
    let levels = ref [] in
    let size = ref 2 in
    while !size <= n do
      (* Flip level. *)
      let flip = ref [] in
      for i = 0 to n - 1 do
        let l = i lxor (!size - 1) in
        if l > i then flip := (i, l) :: !flip
      done;
      levels := List.rev !flip :: !levels;
      (* Butterfly clean levels. *)
      let stride = ref (!size / 4) in
      while !stride >= 1 do
        let level = ref [] in
        for i = 0 to n - 1 do
          let l = i lxor !stride in
          if l > i then level := (i, l) :: !level
        done;
        levels := List.rev !level :: !levels;
        stride := !stride / 2
      done;
      size := !size * 2
    done;
    Network.create ~width:n (List.rev !levels)
  end
