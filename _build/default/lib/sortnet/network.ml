type comparator = int * int

type t = { width : int; levels : comparator list list; size : int }

let validate_level width level =
  let touched = Array.make width false in
  List.iter
    (fun (i, j) ->
      if i < 0 || j >= width || i >= j then
        invalid_arg (Printf.sprintf "Network.create: bad comparator (%d, %d)" i j);
      if touched.(i) || touched.(j) then
        invalid_arg (Printf.sprintf "Network.create: comparator (%d, %d) overlaps its level" i j);
      touched.(i) <- true;
      touched.(j) <- true)
    level

let create ~width levels =
  if width < 0 then invalid_arg "Network.create: negative width";
  List.iter (validate_level width) levels;
  let size = List.fold_left (fun acc l -> acc + List.length l) 0 levels in
  { width; levels; size }

let width t = t.width
let depth t = List.length t.levels
let size t = t.size
let levels t = t.levels

let apply t cmp a =
  if Array.length a <> t.width then invalid_arg "Network.apply: array width mismatch";
  List.iter
    (fun level ->
      List.iter
        (fun (i, j) ->
          if cmp a.(i) a.(j) > 0 then begin
            let tmp = a.(i) in
            a.(i) <- a.(j);
            a.(j) <- tmp
          end)
        level)
    t.levels

let is_sorted a =
  let ok = ref true in
  for i = 0 to Array.length a - 2 do
    if a.(i) > a.(i + 1) then ok := false
  done;
  !ok

let sorts_all_zero_one t =
  if t.width > 24 then invalid_arg "Network.sorts_all_zero_one: width too large";
  let n = t.width in
  let ok = ref true in
  let input = Array.make n 0 in
  let total = 1 lsl n in
  let v = ref 0 in
  while !ok && !v < total do
    for i = 0 to n - 1 do
      input.(i) <- (!v lsr i) land 1
    done;
    apply t compare input;
    if not (is_sorted input) then ok := false;
    incr v
  done;
  !ok
