lib/sortnet/ext_sort.mli: Block Cell Ext_array Odex_extmem
