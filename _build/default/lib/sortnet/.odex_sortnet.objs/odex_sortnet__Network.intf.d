lib/sortnet/network.mli:
