lib/sortnet/network.ml: Array List Printf
