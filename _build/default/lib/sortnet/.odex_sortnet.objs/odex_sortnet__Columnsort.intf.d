lib/sortnet/columnsort.mli: Cell Ext_array Odex_extmem
