lib/sortnet/columnsort.ml: Array Block Cache Cell Emodel Ext_array Odex_extmem Printf
