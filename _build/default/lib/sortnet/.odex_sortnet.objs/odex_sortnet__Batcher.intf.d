lib/sortnet/batcher.mli: Network
