lib/sortnet/ext_sort.ml: Array Block Cache Cell Columnsort Emodel Ext_array Odex_extmem
