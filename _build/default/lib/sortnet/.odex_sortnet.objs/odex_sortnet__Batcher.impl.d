lib/sortnet/batcher.ml: List Network
