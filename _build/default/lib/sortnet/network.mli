(** Comparator networks.

    A sorting network is the canonical deterministic data-oblivious
    algorithm (paper §1: "Simulating a circuit, C, with its inputs taken
    in order from A ... could be ... an AKS sorting network"). A network
    here is a sequence of levels; each level is a set of disjoint
    ascending comparators [(i, j)] with [i < j] that place the minimum at
    [i] and the maximum at [j]. *)

type comparator = int * int

type t

val create : width:int -> comparator list list -> t
(** [create ~width levels] validates that every comparator is ascending,
    in range, and disjoint from the others of its level. *)

val width : t -> int
val depth : t -> int
(** Number of levels. *)

val size : t -> int
(** Total number of comparators. *)

val levels : t -> comparator list list

val apply : t -> ('a -> 'a -> int) -> 'a array -> unit
(** Run the network in place with the given order. *)

val sorts_all_zero_one : t -> bool
(** Exhaustively checks the 0–1 principle over all 2^width binary inputs;
    by Knuth's theorem this certifies the network sorts everything. Only
    feasible for small widths (tests use width <= 16). *)
