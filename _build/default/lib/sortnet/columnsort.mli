(** Leighton's columnsort as an external-memory oblivious sort.

    See {!Ext_sort.columnsort} for the packaged algorithm; this module
    exposes the geometry planner for tests and capacity queries. *)

open Odex_extmem

val plan : n_cells:int -> b:int -> m:int -> (int * int) option
(** [plan ~n_cells ~b ~m] is [Some (r, s)] — column height and count,
    with r a multiple of b·s, r >= 2(s-1)², columns fitting the cache —
    or [None] if no single-level geometry exists. *)

val capacity : b:int -> m:int -> int
(** Approximate largest N (cells) a single columnsort level accepts. *)

val exec :
  real:bool -> cmp:(Cell.t -> Cell.t -> int) -> m:int -> Ext_array.t -> unit
(** Used through {!Ext_sort.columnsort}. *)
