(** Batcher's sorting networks.

    These are the "practical sorting networks" line of prior work the
    paper cites ([29], [39]): O(n log² n) comparators, depth O(log² n).
    [odd_even_merge_sort] accepts arbitrary widths (comparators into the
    +∞ padding region are provably no-ops and are dropped);
    [bitonic] is the normalized all-ascending flip/butterfly variant for
    power-of-two widths. *)

val odd_even_merge_sort : int -> Network.t
(** Batcher odd–even merge sort for any width [n >= 0]. *)

val bitonic : int -> Network.t
(** Normalized bitonic sorter; [n] must be a power of two. *)

val is_power_of_two : int -> bool
