lib/oram/linear_oram.ml: Array Block Cell Ext_array Odex_extmem Storage
