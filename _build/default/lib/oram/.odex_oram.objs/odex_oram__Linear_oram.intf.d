lib/oram/linear_oram.mli: Odex_extmem Storage
