lib/oram/sqrt_oram.ml: Array Block Cell Ext_array Odex_crypto Odex_extmem Odex_sortnet Storage
