lib/oram/sqrt_oram.mli: Odex_crypto Odex_extmem Odex_sortnet Storage
