lib/oram/hierarchical_oram.ml: Array Block Cell Emodel Ext_array List Odex Odex_crypto Odex_extmem Odex_sortnet Storage
