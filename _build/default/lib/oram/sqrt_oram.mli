(** The Goldreich–Ostrovsky square-root ORAM [22], with its epoch
    reshuffles driven by our data-oblivious external-memory sorts.

    Layout: a permuted main area of n + √n blocks (n real words, √n
    dummies) under a client-computable pseudorandom permutation π
    ({!Odex_crypto.Prp}), plus a √n-block shelter. An access scans the
    shelter, probes π(addr) — or π of a fresh dummy when the shelter
    already held the word — and appends the result to the shelter.
    After √n accesses the epoch ends: main and shelter are merged,
    deduplicated (newest version wins) and re-permuted under a fresh π,
    all with the injected oblivious sorter. That reshuffle is exactly
    the "data-oblivious sorting is the bottleneck in the inner loop of
    oblivious RAM simulations" the paper's introduction optimizes:
    experiment E10 swaps the sorter and measures the amortized I/O
    drop.

    Obliviousness: for any two virtual access sequences of equal length
    the trace distributions coincide (shelter scans are full scans;
    main probes are fresh π outputs). With fixed coins and a fixed
    virtual access sequence, the trace is also independent of the
    stored values — the property the audit tests assert. *)

open Odex_extmem

type t

val init :
  ?sorter:Odex_sortnet.Ext_sort.t ->
  m:int ->
  rng:Odex_crypto.Rng.t ->
  Storage.t ->
  values:int array ->
  t
(** Default sorter: {!Odex_sortnet.Ext_sort.auto}. The [rng] is retained
    for epoch keys. *)

val size : t -> int

val read : t -> int -> int
val write : t -> int -> int -> unit

val accesses : t -> int
val epochs : t -> int
(** Number of reshuffles performed. *)
