(** Hierarchical oblivious RAM (Goldreich–Ostrovsky [22]), rebuilt with
    the library's data-oblivious sorts — the construction whose "inner
    loop" the paper's sorting result accelerates.

    Geometry: a stash of S blocks scanned on every access, above levels
    ℓ = 1..L where level ℓ is a hash table of 2^ℓ buckets × Z blocks.
    An access scans the stash, then probes one bucket per non-empty
    level — the real bucket h_ℓ(addr) until the word is found, uniform
    dummy buckets after — and appends the (re-encrypted, possibly
    updated) word to the stash. Every S accesses the stash and levels
    1..ℓ−1 are merged into level ℓ (ℓ chosen by the usual
    binary-counter schedule), with the whole merge done obliviously:

    + one oblivious sort by (address, newest-timestamp-first) and a
      streaming deduplication scan;
    + bucket assignment under a fresh per-epoch PRF key, one oblivious
      sort by (bucket, reals-before-fillers) over the candidates plus
      Z fillers per bucket, a streaming keep-first-Z scan, and one
      butterfly tight compaction (Theorem 6) that leaves every bucket
      exactly Z blocks, aligned.

    The rebuild is two sorts plus linear passes, so its cost — and
    therefore the ORAM's amortized overhead — scales directly with the
    oblivious sort used, which is what experiment E10 measures.

    Failure: a bucket receiving more than Z = Θ(log n) words overflows
    (probability poly(1/n)); the loss is recorded and surfaced through
    {!healthy}, never through the trace. *)

open Odex_extmem

type t

val init :
  ?sorter:Odex_sortnet.Ext_sort.t ->
  ?bucket_size:int ->
  m:int ->
  rng:Odex_crypto.Rng.t ->
  Storage.t ->
  values:int array ->
  t
(** [bucket_size] defaults to max(4, ⌈log₂ n⌉ + 2); the stash period S
    equals the bucket size. *)

val size : t -> int
val levels : t -> int
val bucket_size : t -> int

val read : t -> int -> int
val write : t -> int -> int -> unit

val accesses : t -> int
val rebuilds : t -> int

val healthy : t -> bool
(** False iff some rebuild overflowed a bucket (and dropped words). *)
