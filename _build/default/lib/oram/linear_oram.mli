(** The trivial oblivious RAM: every access scans the whole array.

    Perfectly data-oblivious (the trace is a full scan regardless of the
    virtual address) at Θ(n) I/Os per access — the baseline every real
    ORAM construction is measured against in experiment E10. *)

open Odex_extmem

type t

val init : Storage.t -> values:int array -> t
(** One virtual word per server block. *)

val size : t -> int

val read : t -> int -> int
val write : t -> int -> int -> unit

val accesses : t -> int
(** Number of [read]/[write] operations performed. *)
