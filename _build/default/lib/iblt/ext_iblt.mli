(** Invertible Bloom lookup table in external memory, with the
    semi-oblivious insertion trace of paper §2/Theorem 4.

    "The sequence of memory locations accessed during an insert(x, y)
    method is oblivious to the value y and the number of items already
    stored in the table ... the locations accessed ... depend only on the
    key, x." Here keys are block indices and values are whole blocks: as
    the paper prescribes, each table cell has a [count] field (word), a
    [keySum] field (word) and a [valueSum] field that is a block — we sum
    payload blocks componentwise, with a presence counter per position so
    empty cells add zero.

    [insert] (a real insertion) and [touch] (write everything back
    unchanged, re-encrypted) generate {e identical} traces for the same
    key — that is the property the oblivious compaction of Theorem 4
    builds on, and it is asserted by the test-suite. *)

open Odex_extmem

type t

val create : Storage.t -> ?k:int -> cells:int -> Odex_crypto.Prf.key -> t
(** Allocate a table of [cells] IBLT cells (default k = 3). Each cell
    occupies [blocks_per_cell] consecutive blocks on the server. *)

val cells : t -> int
val k : t -> int
val blocks_per_cell : t -> int
val table_blocks : t -> int
(** Total server blocks used: [cells * blocks_per_cell]. *)

val insert : t -> index:int -> Block.t -> unit
(** [insert t ~index blk] inserts the pair (index, blk): k cell
    read–modify–writes whose addresses depend only on [index]. *)

val touch : t -> index:int -> unit
(** Dummy insertion: the same reads and writes as [insert t ~index _],
    with contents unchanged (but re-encrypted by the storage layer). *)

val decode_in_cache : t -> m:int -> (int * Block.t) list * bool
(** Read the whole table into Alice's cache (capacity [m] blocks;
    requires [table_blocks t <= m]) and run the peeling decode privately.
    Returns the recovered (index, block) pairs and a completeness flag.
    The trace is a single scan of the table — independent of contents.
    This is the fast path of the Theorem 4 decode; for larger tables
    the compaction facade switches engines instead (DESIGN.md §5). *)
