lib/iblt/ext_iblt.mli: Block Odex_crypto Odex_extmem Storage
