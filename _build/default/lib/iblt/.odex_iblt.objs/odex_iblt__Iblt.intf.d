lib/iblt/iblt.mli: Odex_crypto
