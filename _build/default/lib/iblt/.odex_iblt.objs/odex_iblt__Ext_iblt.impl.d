lib/iblt/ext_iblt.ml: Array Block Cache Cell Emodel Ext_array List Odex_crypto Odex_extmem Queue Storage
