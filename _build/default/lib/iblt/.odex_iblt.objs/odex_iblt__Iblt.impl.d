lib/iblt/iblt.ml: Array List Odex_crypto Queue
