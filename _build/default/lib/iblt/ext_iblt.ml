open Odex_extmem

type t = {
  storage : Storage.t;
  fam : Odex_crypto.Hash_family.t;
  region : Ext_array.t;
  cells : int;
  blocks_per_cell : int;
  vec_len : int;
}

(* Cell vector layout: [count; keySum; (present, key, value, tag, aux) × B].
   Vectors are packed four ints per storage cell (every slot an Item, so
   the stored shape carries no information). *)

let vec_len_of b = 2 + (5 * b)

let blocks_per_cell_of b = Emodel.ceil_div (vec_len_of b) (4 * b)

let create storage ?(k = 3) ~cells key =
  if cells < k then invalid_arg "Ext_iblt.create: cells must be >= k";
  let b = Storage.block_size storage in
  let blocks_per_cell = blocks_per_cell_of b in
  let region = Ext_array.create storage ~blocks:(cells * blocks_per_cell) in
  {
    storage;
    fam = Odex_crypto.Hash_family.create ~k ~size:cells key;
    region;
    cells;
    blocks_per_cell;
    vec_len = vec_len_of b;
  }

let cells t = t.cells
let k t = Odex_crypto.Hash_family.k t.fam
let blocks_per_cell t = t.blocks_per_cell
let table_blocks t = t.cells * t.blocks_per_cell

let block_size t = Storage.block_size t.storage

(* --- int-vector <-> storage-block codecs ------------------------------ *)

let pack_vec t vec =
  let b = block_size t in
  Array.init t.blocks_per_cell (fun blk_i ->
      Array.init b (fun slot ->
          let base = ((blk_i * b) + slot) * 4 in
          let at ofs = if base + ofs < t.vec_len then vec.(base + ofs) else 0 in
          Cell.item ~key:(at 0) ~value:(at 1) ~tag:(at 2) ~aux:(at 3) ()))

let unpack_into t vec blk_i (blk : Block.t) =
  let b = block_size t in
  Array.iteri
    (fun slot c ->
      (* Freshly allocated table blocks are all-Empty; an empty slot
         decodes as three zero components. *)
      match c with
      | Cell.Empty -> ()
      | Cell.Item it ->
          let base = ((blk_i * b) + slot) * 4 in
          if base < t.vec_len then vec.(base) <- it.key;
          if base + 1 < t.vec_len then vec.(base + 1) <- it.value;
          if base + 2 < t.vec_len then vec.(base + 2) <- it.tag;
          if base + 3 < t.vec_len then vec.(base + 3) <- it.aux)
    blk

(* Componentwise encoding of a payload block as the value part of a cell
   vector: (present, key, value, tag) per position. *)
let payload_vec b (blk : Block.t) =
  let vec = Array.make (5 * b) 0 in
  Array.iteri
    (fun i c ->
      match c with
      | Cell.Empty -> ()
      | Cell.Item it ->
          vec.(5 * i) <- 1;
          vec.((5 * i) + 1) <- it.key;
          vec.((5 * i) + 2) <- it.value;
          vec.((5 * i) + 3) <- it.tag;
          vec.((5 * i) + 4) <- it.aux)
    blk;
  vec

let payload_of_vec b vec off =
  let ok = ref true in
  let blk =
    Array.init b (fun i ->
        match vec.(off + (5 * i)) with
        | 0 -> Cell.empty
        | 1 ->
            Cell.item
              ~key:vec.(off + (5 * i) + 1)
              ~value:vec.(off + (5 * i) + 2)
              ~tag:vec.(off + (5 * i) + 3)
              ~aux:vec.(off + (5 * i) + 4)
              ()
        | _ ->
            ok := false;
            Cell.empty)
  in
  if !ok then Some blk else None

(* --- counted cell I/O -------------------------------------------------- *)

let read_cell t cell =
  let vec = Array.make t.vec_len 0 in
  for blk_i = 0 to t.blocks_per_cell - 1 do
    let blk = Ext_array.read_block t.region ((cell * t.blocks_per_cell) + blk_i) in
    unpack_into t vec blk_i blk
  done;
  vec

let write_cell t cell vec =
  Array.iteri
    (fun blk_i blk ->
      Ext_array.write_block t.region ((cell * t.blocks_per_cell) + blk_i) blk)
    (pack_vec t vec)

(* --- operations -------------------------------------------------------- *)

let apply t ~index payload =
  (* One read–modify–write per hash cell; [payload = None] is the dummy
     pass with the identical trace. *)
  Array.iter
    (fun cell ->
      let vec = read_cell t cell in
      (match payload with
      | None -> ()
      | Some delta ->
          vec.(0) <- vec.(0) + 1;
          vec.(1) <- vec.(1) + index;
          Array.iteri (fun i d -> vec.(2 + i) <- vec.(2 + i) + d) delta);
      write_cell t cell vec)
    (Odex_crypto.Hash_family.hashes t.fam index)

let insert t ~index blk =
  if Array.length blk <> block_size t then invalid_arg "Ext_iblt.insert: bad block size";
  apply t ~index (Some (payload_vec (block_size t) blk))

let touch t ~index = apply t ~index None

(* --- decode ------------------------------------------------------------ *)

let decode_in_cache t ~m =
  let b = block_size t in
  let cache = Cache.create t.storage ~capacity:m in
  (* One linear scan of the table: the trace is fixed. *)
  let vecs =
    Array.init t.cells (fun cell ->
        let vec = Array.make t.vec_len 0 in
        for blk_i = 0 to t.blocks_per_cell - 1 do
          let addr = Ext_array.addr t.region ((cell * t.blocks_per_cell) + blk_i) in
          unpack_into t vec blk_i (Cache.load cache addr)
        done;
        vec)
  in
  Cache.drop_all cache;
  (* Private peeling, as in the RAM structure. *)
  let queue = Queue.create () in
  Array.iteri (fun c vec -> if vec.(0) = 1 then Queue.add c queue) vecs;
  let out = ref [] in
  let bad = ref false in
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    let vec = vecs.(c) in
    if vec.(0) = 1 then begin
      let index = vec.(1) in
      let hs = Odex_crypto.Hash_family.hashes t.fam index in
      if index >= 0 && Array.exists (fun c' -> c' = c) hs then begin
        match payload_of_vec b vec 2 with
        | None -> bad := true
        | Some blk ->
            out := (index, blk) :: !out;
            let delta = payload_vec b blk in
            Array.iter
              (fun c' ->
                let v' = vecs.(c') in
                v'.(0) <- v'.(0) - 1;
                v'.(1) <- v'.(1) - index;
                Array.iteri (fun i d -> v'.(2 + i) <- v'.(2 + i) - d) delta;
                if v'.(0) = 1 then Queue.add c' queue)
              hs
      end
    end
  done;
  let complete = (not !bad) && Array.for_all (fun vec -> vec.(0) = 0) vecs in
  (List.rev !out, complete)
