(** Invertible Bloom lookup tables (Goodrich–Mitzenmacher [25]).

    The randomized key–value store of paper §2: a table of m cells, each
    holding a [count], a [keySum] and a [valueSum]; k hash functions with
    pairwise-distinct outputs place every pair in k cells. Insertions and
    deletions always succeed (even past capacity); [get] and
    [list_entries] succeed with the probability of Lemma 1 — for m ≥ δkn
    with δ ≥ 2, k ≥ 2 the decode succeeds with probability 1 − 1/n^c.

    This is the RAM-model structure; {!Ext_iblt} stores the same cells in
    external memory with the data-oblivious insertion trace that
    Theorem 4 exploits. *)

type t

val create : ?k:int -> size:int -> Odex_crypto.Prf.key -> t
(** [create ~k ~size key] makes an empty table of [size] cells using [k]
    partitioned hash functions (default 3). *)

val size : t -> int
val k : t -> int

val entries : t -> int
(** Number of key–value pairs currently stored (inserts − deletes). *)

val copy : t -> t

val insert : t -> key:int -> value:int -> unit
(** Keys must be distinct across live insertions (paper §2). *)

val delete : t -> key:int -> value:int -> unit
(** Assumes [(key, value)] was inserted. *)

type lookup = Found of int | Absent | Unknown

val get : t -> int -> lookup
(** [Unknown] is the paper's "this operation may fail" case: every cell
    for the key is shared, so the value cannot be recovered without a
    full decode. *)

val list_entries : t -> (int * int) list * bool
(** Non-destructive peeling decode (the paper's footnote 3 backup-copy
    variant): returns the recovered pairs and whether the decode was
    complete ([false] = the paper's "list-incomplete" condition). Runs in
    O(m) time using a worklist of count-1 cells. *)

val cell_counts : t -> int array
(** Per-cell [count] fields (diagnostics and tests). *)
