type t = {
  fam : Odex_crypto.Hash_family.t;
  count : int array;
  key_sum : int array;
  value_sum : int array;
  mutable entries : int;
}

let create ?(k = 3) ~size key =
  if size < k then invalid_arg "Iblt.create: size must be >= k";
  {
    fam = Odex_crypto.Hash_family.create ~k ~size key;
    count = Array.make size 0;
    key_sum = Array.make size 0;
    value_sum = Array.make size 0;
    entries = 0;
  }

let size t = Array.length t.count
let k t = Odex_crypto.Hash_family.k t.fam
let entries t = t.entries

let copy t =
  {
    fam = t.fam;
    count = Array.copy t.count;
    key_sum = Array.copy t.key_sum;
    value_sum = Array.copy t.value_sum;
    entries = t.entries;
  }

let update t ~key ~value ~sign =
  Array.iter
    (fun cell ->
      t.count.(cell) <- t.count.(cell) + sign;
      t.key_sum.(cell) <- t.key_sum.(cell) + (sign * key);
      t.value_sum.(cell) <- t.value_sum.(cell) + (sign * value))
    (Odex_crypto.Hash_family.hashes t.fam key);
  t.entries <- t.entries + sign

let insert t ~key ~value = update t ~key ~value ~sign:1
let delete t ~key ~value = update t ~key ~value ~sign:(-1)

type lookup = Found of int | Absent | Unknown

let get t key =
  let cells = Odex_crypto.Hash_family.hashes t.fam key in
  let rec scan i =
    if i >= Array.length cells then Unknown
    else
      let c = cells.(i) in
      if t.count.(c) = 0 then Absent
      else if t.count.(c) = 1 then
        if t.key_sum.(c) = key then Found t.value_sum.(c) else Absent
      else scan (i + 1)
  in
  scan 0

(* Peeling decode with a worklist of pure cells (count = 1 and the cell
   really is one of its key's hash locations — the consistency check
   guards against ghosts produced by deletions of absent pairs). *)
let list_entries t0 =
  let t = copy t0 in
  let m = size t in
  let queue = Queue.create () in
  for c = 0 to m - 1 do
    if t.count.(c) = 1 then Queue.add c queue
  done;
  let out = ref [] in
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    if t.count.(c) = 1 then begin
      let key = t.key_sum.(c) and value = t.value_sum.(c) in
      let cells = Odex_crypto.Hash_family.hashes t.fam key in
      if Array.exists (fun c' -> c' = c) cells then begin
        out := (key, value) :: !out;
        delete t ~key ~value;
        Array.iter (fun c' -> if t.count.(c') = 1 then Queue.add c' queue) cells
      end
    end
  done;
  let complete = Array.for_all (fun c -> c = 0) t.count in
  (List.rev !out, complete)

let cell_counts t = Array.copy t.count
