let ceil_div a b =
  if b <= 0 then invalid_arg "Emodel.ceil_div: non-positive divisor";
  (a + b - 1) / b

let ilog2_floor n =
  if n < 1 then invalid_arg "Emodel.ilog2_floor: n must be >= 1";
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let ilog2_ceil n =
  if n < 1 then invalid_arg "Emodel.ilog2_ceil: n must be >= 1";
  let f = ilog2_floor n in
  if 1 lsl f = n then f else f + 1

let log_base ~base x = Float.log x /. Float.log base

let log_star n =
  let rec go acc x = if x <= 1. then acc else go (acc + 1) (Float.log x /. Float.log 2.) in
  go 0 (Float.of_int n)

let tower_of_twos i =
  if i < 1 then invalid_arg "Emodel.tower_of_twos: i must be >= 1";
  let rec go acc j =
    if j = i then acc
    else if acc >= 62 then max_int
    else go (1 lsl acc) (j + 1)
  in
  go 4 1

let wide_block_ok ~n_blocks ~block_size =
  Float.of_int block_size >= log_base ~base:2. (Float.of_int (max 2 n_blocks))

let tall_cache_ok ?(epsilon = 0.5) ~block_size cache_words =
  Float.of_int cache_words >= Float.pow (Float.of_int block_size) (1. +. epsilon)

let sort_io_bound ~n_blocks ~m_blocks =
  if m_blocks < 2 then invalid_arg "Emodel.sort_io_bound: m_blocks must be >= 2";
  let n = Float.of_int n_blocks and m = Float.of_int (max 2 m_blocks) in
  n *. Float.max 1. (log_base ~base:m n)
