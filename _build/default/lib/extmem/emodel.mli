(** External-memory model arithmetic: the quantities the paper's bounds
    are stated in, and its two standing assumptions. *)

val ceil_div : int -> int -> int

val ilog2_floor : int -> int
(** [ilog2_floor n] for n >= 1. *)

val ilog2_ceil : int -> int
(** Smallest [k] with [2^k >= n], for n >= 1. *)

val log_base : base:float -> float -> float

val log_star : int -> int
(** Iterated logarithm: the number of times log₂ must be applied to reach
    a value <= 1. Appears in the Theorem 9 bound. *)

val tower_of_twos : int -> int
(** [tower_of_twos i] is t_i of Appendix B: t₁ = 4 and t_{i+1} = 2^{t_i}.
    Saturates at [max_int] once it would overflow. *)

val wide_block_ok : n_blocks:int -> block_size:int -> bool
(** The paper's wide-block assumption: B >= log(N/B). *)

val tall_cache_ok : ?epsilon:float -> block_size:int -> int -> bool
(** [tall_cache_ok ~block_size cache_words] is the weak tall-cache
    assumption M >= B^{1+ε} (default ε = 0.5, the paper's zettabyte
    example). *)

val sort_io_bound : n_blocks:int -> m_blocks:int -> float
(** The optimal external sorting bound (N/B)·log_{M/B}(N/B) (Aggarwal–
    Vitter), the target of Theorem 21. Requires m_blocks >= 2. *)
