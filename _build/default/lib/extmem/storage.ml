type repr =
  | Plain of Block.t
  | Encrypted of { nonce : int; data : bytes }

type cipher_state = { key : Odex_crypto.Cipher.key; mutable next_nonce : int }

type t = {
  block_size : int;
  mutable blocks : repr array;
  mutable used : int;
  stats : Stats.t;
  trace : Trace.t;
  cipher : cipher_state option;
}

let create ?cipher ?(trace_mode = Trace.Digest) ~block_size () =
  if block_size < 1 then invalid_arg "Storage.create: block_size must be >= 1";
  {
    block_size;
    blocks = [||];
    used = 0;
    stats = Stats.create ();
    trace = Trace.create trace_mode;
    cipher = Option.map (fun key -> { key; next_nonce = 0 }) cipher;
  }

let block_size t = t.block_size
let capacity t = t.used
let stats t = t.stats
let trace t = t.trace

let seal t blk =
  match t.cipher with
  | None -> Plain (Block.copy blk)
  | Some cs ->
      let nonce = cs.next_nonce in
      cs.next_nonce <- nonce + 1;
      Encrypted { nonce; data = Odex_crypto.Cipher.encrypt cs.key ~nonce (Block.encode blk) }

let unseal t = function
  | Plain blk -> Block.copy blk
  | Encrypted { nonce; data } -> (
      match t.cipher with
      | None -> invalid_arg "Storage: encrypted block but no cipher key"
      | Some cs ->
          Block.decode ~block_size:t.block_size
            (Odex_crypto.Cipher.decrypt cs.key ~nonce data))

let grow t needed =
  let cap = Array.length t.blocks in
  if needed > cap then begin
    let new_cap = max needed (max 16 (cap * 2)) in
    let fresh = Array.make new_cap (Plain (Block.make t.block_size)) in
    Array.blit t.blocks 0 fresh 0 t.used;
    t.blocks <- fresh
  end

let alloc t n =
  if n < 0 then invalid_arg "Storage.alloc: negative size";
  let base = t.used in
  grow t (t.used + n);
  for i = base to base + n - 1 do
    t.blocks.(i) <- seal t (Block.make t.block_size)
  done;
  t.used <- t.used + n;
  base

let check_addr t addr =
  if addr < 0 || addr >= t.used then
    invalid_arg (Printf.sprintf "Storage: address %d out of bounds (capacity %d)" addr t.used)

let read t addr =
  check_addr t addr;
  Stats.record_read t.stats;
  Trace.record t.trace (Trace.Read addr);
  unseal t t.blocks.(addr)

let write t addr blk =
  check_addr t addr;
  if Array.length blk <> t.block_size then
    invalid_arg "Storage.write: block has wrong size";
  Stats.record_write t.stats;
  Trace.record t.trace (Trace.Write addr);
  t.blocks.(addr) <- seal t blk

let unchecked_peek t addr =
  check_addr t addr;
  unseal t t.blocks.(addr)

let unchecked_poke t addr blk =
  check_addr t addr;
  if Array.length blk <> t.block_size then
    invalid_arg "Storage.unchecked_poke: block has wrong size";
  t.blocks.(addr) <- seal t blk
