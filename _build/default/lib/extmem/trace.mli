(** The adversary's view: the sequence of block addresses Alice touches.

    Bob "can view the sequence and location of all of Alice's disk
    accesses ... but he cannot see the content of what is read or written"
    (paper §1). A trace records exactly that view. An algorithm is
    data-oblivious when, for fixed problem, N, M, B (and here, fixed
    coins), the trace is identical whatever the stored values are — the
    property the {!Odex.Oblivious} audit checks.

    Recording modes trade fidelity for memory: [Full] keeps every
    operation (small experiments, pretty-printing the adversary's view);
    [Digest] folds the operations into a rolling 64-bit hash plus a
    length, which suffices for equality testing on multi-million-I/O
    runs; [Off] records nothing. *)

type op = Read of int | Write of int

type mode = Off | Digest | Full

type t

val create : mode -> t

val mode : t -> mode
val record : t -> op -> unit

val length : t -> int
(** Number of operations recorded (maintained in all modes but [Off]). *)

val digest : t -> int64
(** Order-sensitive hash of the operation sequence. *)

val ops : t -> op list
(** The full sequence; [] unless mode is [Full]. *)

val equal : t -> t -> bool
(** Equality of the recorded views: digests and lengths agree (and full
    sequences agree when both are [Full]). *)

val reset : t -> unit

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
