lib/extmem/emodel.ml: Float
