lib/extmem/trace.ml: Format Int64 List
