lib/extmem/trace.mli: Format
