lib/extmem/cell.ml: Bytes Char Format Int64 Printf
