lib/extmem/ext_array.mli: Block Cell Storage
