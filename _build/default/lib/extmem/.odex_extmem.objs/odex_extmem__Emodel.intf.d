lib/extmem/emodel.mli:
