lib/extmem/block.ml: Array Bytes Cell Format List
