lib/extmem/stats.mli: Format
