lib/extmem/cache.ml: Block Hashtbl List Printf Storage
