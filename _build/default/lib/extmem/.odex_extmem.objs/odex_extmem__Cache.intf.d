lib/extmem/cache.mli: Block Storage
