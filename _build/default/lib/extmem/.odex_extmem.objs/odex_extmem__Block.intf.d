lib/extmem/block.mli: Cell Format
