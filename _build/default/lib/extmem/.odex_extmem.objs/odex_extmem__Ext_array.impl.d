lib/extmem/ext_array.ml: Array Block Cell Printf Storage
