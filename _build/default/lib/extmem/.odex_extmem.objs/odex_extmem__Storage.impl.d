lib/extmem/storage.ml: Array Block Odex_crypto Option Printf Stats Trace
