lib/extmem/stats.ml: Format
