lib/extmem/cell.mli: Format
