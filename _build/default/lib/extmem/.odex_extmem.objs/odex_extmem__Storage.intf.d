lib/extmem/storage.mli: Block Odex_crypto Stats Trace
