type t = { mutable reads : int; mutable writes : int }

let create () = { reads = 0; writes = 0 }

let record_read t = t.reads <- t.reads + 1
let record_write t = t.writes <- t.writes + 1

let reads t = t.reads
let writes t = t.writes
let total t = t.reads + t.writes

let reset t =
  t.reads <- 0;
  t.writes <- 0

type snapshot = { reads : int; writes : int }

let snapshot (t : t) : snapshot = { reads = t.reads; writes = t.writes }

let span t f =
  let before = snapshot t in
  let result = f () in
  let after = snapshot t in
  (result, { reads = after.reads - before.reads; writes = after.writes - before.writes })

let pp ppf (t : t) = Format.fprintf ppf "reads=%d writes=%d total=%d" t.reads t.writes (total t)
