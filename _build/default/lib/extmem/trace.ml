type op = Read of int | Write of int

type mode = Off | Digest | Full

type t = {
  mode : mode;
  mutable length : int;
  mutable hash : int64;
  mutable rev_ops : op list;
}

let create mode = { mode; length = 0; hash = 0L; rev_ops = [] }

let mode t = t.mode

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let op_code = function
  | Read addr -> Int64.of_int ((addr lsl 1) lor 0)
  | Write addr -> Int64.of_int ((addr lsl 1) lor 1)

let record t op =
  match t.mode with
  | Off -> ()
  | Digest ->
      t.length <- t.length + 1;
      t.hash <- mix64 (Int64.add (Int64.mul t.hash 0x100000001B3L) (op_code op))
  | Full ->
      t.length <- t.length + 1;
      t.hash <- mix64 (Int64.add (Int64.mul t.hash 0x100000001B3L) (op_code op));
      t.rev_ops <- op :: t.rev_ops

let length t = t.length
let digest t = t.hash
let ops t = List.rev t.rev_ops

let equal a b =
  a.length = b.length && a.hash = b.hash
  &&
  match (a.mode, b.mode) with
  | Full, Full -> a.rev_ops = b.rev_ops
  | _ -> true

let reset t =
  t.length <- 0;
  t.hash <- 0L;
  t.rev_ops <- []

let pp_op ppf = function
  | Read addr -> Format.fprintf ppf "R%d" addr
  | Write addr -> Format.fprintf ppf "W%d" addr

let pp ppf t =
  match t.mode with
  | Off -> Format.fprintf ppf "<trace off>"
  | Digest -> Format.fprintf ppf "<%d ops, digest %Lx>" t.length t.hash
  | Full ->
      Format.fprintf ppf "@[<hov>%a@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ") pp_op)
        (ops t)
