(** Bob's disk: a growable array of encrypted blocks with exact I/O
    accounting and adversary-trace recording.

    This is the outsourced storage server of the paper's model (§1): data
    is "accessed and organized in contiguous blocks, with each block
    holding B words". Reads and writes are the unit-cost I/Os that every
    theorem counts; the trace records the adversary's view of them. When a
    cipher key is supplied, blocks are genuinely serialized and encrypted
    with a fresh nonce on every write, so rewriting identical content
    produces a different ciphertext — the re-encryption property the paper
    assumes. *)

type t

val create :
  ?cipher:Odex_crypto.Cipher.key ->
  ?trace_mode:Trace.mode ->
  block_size:int ->
  unit ->
  t
(** Fresh empty disk. [trace_mode] defaults to [Digest]. *)

val block_size : t -> int
val capacity : t -> int
(** Number of allocated blocks. *)

val alloc : t -> int -> int
(** [alloc t n] reserves [n] fresh blocks initialized to all-[Empty] and
    returns the address of the first. Allocation itself performs no
    counted I/O (the server zero-initializes); any oblivious
    initialization an algorithm needs is paid by explicit writes. The
    allocator is a deterministic bump allocator, so allocation addresses
    never depend on data. *)

val read : t -> int -> Block.t
(** [read t addr] performs one I/O and returns a private copy of the
    block. *)

val write : t -> int -> Block.t -> unit
(** [write t addr blk] performs one I/O, re-encrypting under a fresh
    nonce. The block is copied (or serialized), so the caller may keep
    mutating its buffer. *)

val stats : t -> Stats.t
val trace : t -> Trace.t

val unchecked_peek : t -> int -> Block.t
(** Read a block {e without} counting an I/O or recording a trace entry.
    For tests and experiment harnesses only — the equivalent of the
    experimenter inspecting the disk out-of-band. *)

val unchecked_poke : t -> int -> Block.t -> unit
(** Write without accounting; test/harness setup only. *)
