(* Fixed-width table printing for the experiment harness. *)

let hrule widths =
  print_string "+";
  List.iter (fun w -> print_string (String.make (w + 2) '-' ^ "+")) widths;
  print_newline ()

let row widths cells =
  print_string "|";
  List.iter2 (fun w c -> Printf.printf " %-*s |" w c) widths cells;
  print_newline ()

let print ~title ~header rows =
  Printf.printf "\n== %s ==\n" title;
  let all = header :: rows in
  let widths =
    List.mapi (fun i _ -> List.fold_left (fun acc r -> max acc (String.length (List.nth r i))) 0 all)
      header
  in
  hrule widths;
  row widths header;
  hrule widths;
  List.iter (row widths) rows;
  hrule widths

let note fmt = Printf.printf fmt

let fint n = string_of_int n
let ffloat f = Printf.sprintf "%.2f" f
let fratio f = Printf.sprintf "%.2fx" f
let fprob p = Printf.sprintf "%.4f" p
let fbool b = if b then "yes" else "NO"
