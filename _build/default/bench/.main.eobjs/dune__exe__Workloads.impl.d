bench/workloads.ml: Array Cell Ext_array Odex_crypto Odex_extmem Stats Storage Trace
