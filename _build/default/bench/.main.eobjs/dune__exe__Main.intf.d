bench/main.mli:
