#!/bin/sh
# check_bench_floor.sh BENCH_core.json bench/mb_per_s.floor
#
# Guards the batching win: fails if the E2 file-backend throughput
# (mb_per_s of the largest consolidation workload) regresses more than
# 30% below the checked-in floor. The floor file holds one number,
# refreshed by hand from a local `--json E2 --backend file` run when the
# I/O path legitimately changes.
set -eu

json=${1:-BENCH_core.json}
floor_file=${2:-bench/mb_per_s.floor}

[ -s "$json" ] || { echo "check_bench_floor: $json missing or empty" >&2; exit 1; }
[ -s "$floor_file" ] || { echo "check_bench_floor: $floor_file missing or empty" >&2; exit 1; }

floor=$(tr -d ' \n' < "$floor_file")

# Pull mb_per_s from the E2 record with the largest n_cells on the file
# backend. The bench writes one record per line, so line-oriented tools
# are enough — no JSON parser dependency.
measured=$(grep '"experiment":"E2"' "$json" \
  | grep '"backend":"file"' \
  | sed 's/.*"n_cells":\([0-9]*\).*"mb_per_s":\([0-9.]*\).*/\1 \2/' \
  | sort -n | tail -1 | cut -d' ' -f2)

[ -n "$measured" ] || { echo "check_bench_floor: no E2 file record in $json" >&2; exit 1; }

awk -v m="$measured" -v f="$floor" 'BEGIN {
  min = 0.7 * f;
  printf "E2 file throughput: %.1f MB/s (floor %.1f, minimum %.1f)\n", m, f, min;
  exit (m >= min) ? 0 : 1;
}' || { echo "check_bench_floor: throughput regressed more than 30% below the floor" >&2; exit 1; }
