#!/bin/sh
# check_bench_floor.sh BENCH_core.json bench/mb_per_s.floor [mode]
#
# Guards the batching win: fails if the E2 file-backend throughput
# (mb_per_s of the largest consolidation workload) regresses more than
# 30% below the checked-in floor. The floor file holds one number,
# refreshed by hand from a local `--json E2 --backend file` run when the
# I/O path legitimately changes.
#
# mode `e15` (third argument) checks a sorter-matrix leg instead: the
# file must carry journal-off E15 sorting-engine records, every one of
# them verified sorted (`"ok":true`). When the default (e2) mode finds
# E15 records alongside the E2 ones, the same sorter guard runs too.
set -eu

json=${1:-BENCH_core.json}
floor_file=${2:-bench/mb_per_s.floor}
mode=${3:-e2}

[ -s "$json" ] || { echo "check_bench_floor: $json missing or empty" >&2; exit 1; }

# E15 sorter records: every engine leg must have verified its output
# sorted. Bucket legs must include journal-off records — the floor
# semantics stay scoped to the bare store, like `"backend":"file"` for
# E2 — and an overflow (ok:false) fails the leg.
check_e15() {
  bad=$(grep '"experiment":"E15"' "$json" | grep -c '"ok":false' || true)
  if [ "$bad" -gt 0 ]; then
    echo "check_bench_floor: $bad E15 sorter record(s) with ok:false (unsorted output or bucket overflow)" >&2
    exit 1
  fi
  if grep '"experiment":"E15"' "$json" | grep '"sorter":"bucket"' | grep -q '"journal":false'; then
    n=$(grep -c '"experiment":"E15"' "$json" || true)
    echo "E15 sorter records: $n, all ok, journal-off bucket leg present"
  fi
}

if [ "$mode" = "e15" ]; then
  grep -q '"experiment":"E15"' "$json" \
    || { echo "check_bench_floor: no E15 sorter records in $json" >&2; exit 1; }
  if grep '"experiment":"E15"' "$json" | grep -q '"sorter":"bucket"'; then
    grep '"experiment":"E15"' "$json" | grep '"sorter":"bucket"' | grep -q '"journal":false' \
      || { echo "check_bench_floor: no journal-off bucket-sort E15 record in $json" >&2; exit 1; }
  fi
  check_e15
  exit 0
fi

[ -s "$floor_file" ] || { echo "check_bench_floor: $floor_file missing or empty" >&2; exit 1; }

floor=$(tr -d ' \n' < "$floor_file")

# Pull mb_per_s from the E2 record with the largest n_cells on the file
# backend. The bench writes one record per line, so line-oriented tools
# are enough — no JSON parser dependency.
measured=$(grep '"experiment":"E2"' "$json" \
  | grep '"backend":"file"' \
  | sed 's/.*"n_cells":\([0-9]*\).*"mb_per_s":\([0-9.]*\).*/\1 \2/' \
  | sort -n | tail -1 | cut -d' ' -f2)

[ -n "$measured" ] || { echo "check_bench_floor: no E2 file record in $json" >&2; exit 1; }

awk -v m="$measured" -v f="$floor" 'BEGIN {
  min = 0.7 * f;
  printf "E2 file throughput: %.1f MB/s (floor %.1f, minimum %.1f)\n", m, f, min;
  exit (m >= min) ? 0 : 1;
}' || { echo "check_bench_floor: throughput regressed more than 30% below the floor" >&2; exit 1; }

if grep -q '"experiment":"E15"' "$json"; then check_e15; fi
