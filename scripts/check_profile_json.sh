#!/bin/sh
# check_profile_json.sh profile_trace.json
#
# Smoke-checks a Chrome trace-event profile exported by the bench's
# `--profile` flag (or `odx --profile`): the file must parse as JSON and
# carry the trace-event envelope Perfetto / chrome://tracing expect —
# a traceEvents array holding at least one complete ("ph":"X") phase
# event with microsecond timestamps.
set -eu

profile=${1:-profile_trace.json}

[ -s "$profile" ] || { echo "check_profile_json: $profile missing or empty" >&2; exit 1; }

if command -v python3 >/dev/null 2>&1; then
  python3 - "$profile" <<'PY'
import json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

events = doc.get("traceEvents")
assert isinstance(events, list), "traceEvents missing or not a list"
assert events, "traceEvents is empty"

phases = [e for e in events if e.get("ph") == "X"]
assert phases, "no complete ('ph':'X') phase events"
for e in phases:
    for field in ("name", "ts", "dur", "pid", "tid"):
        assert field in e, f"phase event missing {field!r}: {e}"
    assert isinstance(e["ts"], (int, float)) and e["ts"] >= 0, f"bad ts: {e}"
    assert isinstance(e["dur"], (int, float)) and e["dur"] >= 0, f"bad dur: {e}"

names = [e for e in events if e.get("ph") == "M" and e.get("name") == "thread_name"]
assert names, "no thread_name metadata events"

print(f"check_profile_json: {path} OK "
      f"({len(events)} events, {len(phases)} phases, {len(names)} threads)")
PY
else
  # Fallback without python3: structural grep for the envelope and at
  # least one phase event.
  grep -q '"traceEvents"' "$profile" || {
    echo "check_profile_json: no traceEvents key in $profile" >&2; exit 1; }
  grep -q '"ph":"X"' "$profile" || {
    echo "check_profile_json: no phase events in $profile" >&2; exit 1; }
  grep -q '"name":"thread_name"' "$profile" || {
    echo "check_profile_json: no thread_name metadata in $profile" >&2; exit 1; }
  echo "check_profile_json: $profile OK (structural check; python3 unavailable)"
fi
